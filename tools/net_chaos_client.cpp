//===- tools/net_chaos_client.cpp - Socket chaos harness ------------------===//
///
/// \file
/// Adversarial remote-client harness for the NetServer: K concurrent TCP
/// clients each stream a seeded random trace through the sequence-numbered
/// wire protocol while deliberately misbehaving — writes fragmented into
/// 1..7-byte chunks, abrupt mid-frame disconnects every --reconnect-every
/// lines followed by reconnect-with-resume, optimistic pipelining that
/// relies on the server's backpressure/resync replies to stay in sync.
/// Every surviving client's delivered verdicts are checked against the
/// happens-before oracle over its own trace; clients killed by server-side
/// chaos (shed, error budget, shard loss) are skipped-but-counted, mirroring
/// the service soak's accounting.
///
/// With --shm <path> the same differential runs over the shared-memory ring
/// transport through GoldClient instead of raw sockets; --shm-stall-ppm /
/// --shm-corrupt-ppm arm the producer-side failpoints (wedge reaps and
/// decode-error kills) in this process, so the soak exercises crash-only
/// ring recovery the way the TCP soak exercises reconnect-with-resume.
///
/// Exit code: 0 when no surviving client diverged and at least one client
/// was compared; 1 on divergence, a harness failure, or nothing compared;
/// 126 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "client/GoldClient.h"
#include "event/RandomTrace.h"
#include "event/TraceIO.h"
#include "hb/HbOracle.h"
#include "service/net/Protocol.h"
#include "support/Failpoints.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace gold;
namespace proto = gold::net::proto;

namespace {

struct Params {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  std::string ShmPath;        ///< non-empty: drive the shm ring transport
  size_t Clients = 8;
  unsigned Steps = 40;
  unsigned Threads = 4;
  uint64_t Seed = 1;
  size_t ReconnectEvery = 0;  ///< abrupt disconnect cadence; 0 disables
  bool ChaosWrites = true;    ///< fragment writes into tiny chunks
  uint64_t DeadlineMs = 120000;
  uint32_t ShmStallPpm = 0;   ///< shm-producer-stall firing rate
  uint32_t ShmCorruptPpm = 0; ///< shm-slot-corrupt firing rate
  unsigned StallMicros = 0;   ///< stall length; must exceed the server's
                              ///< wedge timeout to force reaps
  bool Trace = false;         ///< stamp origins + clock handshake on frames
  uint32_t TracePpm = 10000;  ///< client_e2e span sampling rate
  uint64_t TraceSeed = 1;     ///< must match the server's --trace-seed
  std::string TraceOut;       ///< gold-trace-v1 output path (client spans)
  TraceEventSink *TraceSink = nullptr; ///< shared across client threads
};

uint64_t chaosNowNanos() {
  timespec Ts;
  clock_gettime(CLOCK_MONOTONIC, &Ts);
  return uint64_t(Ts.tv_sec) * 1000000000ull + uint64_t(Ts.tv_nsec);
}

uint64_t mix64(uint64_t &S) {
  S += 0x9e3779b97f4a7c15ULL;
  uint64_t X = S;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

struct Result {
  bool Compared = false;
  bool Killed = false;   ///< session torn down by server-side chaos
  bool Failed = false;   ///< harness failure (timeout, protocol surprise)
  bool Diverged = false;
  std::string Why;
  size_t Races = 0;
  size_t Reconnects = 0;
  size_t Rewinds = 0; ///< backpressure/resync rewinds honored
};

/// One blocking-ish line-protocol connection with buffered line reads.
class Wire {
public:
  ~Wire() { closeFd(); }

  bool connectTo(const std::string &Host, uint16_t Port) {
    closeFd();
    RxBuf.clear();
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in A;
    std::memset(&A, 0, sizeof(A));
    A.sin_family = AF_INET;
    A.sin_port = htons(Port);
    if (::inet_pton(AF_INET, Host.c_str(), &A.sin_addr) != 1 ||
        ::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) != 0) {
      closeFd();
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return true;
  }

  bool connected() const { return Fd >= 0; }

  /// Sends the whole buffer; when \p Rng is non-null the data goes out in
  /// 1..7-byte chunks so server reads always see fragments.
  bool sendAll(const std::string &Data, uint64_t *Rng) {
    if (Fd < 0)
      return false;
    size_t Off = 0;
    while (Off < Data.size()) {
      size_t N = Data.size() - Off;
      if (Rng)
        N = std::min<size_t>(N, 1 + mix64(*Rng) % 7);
      ssize_t W = ::send(Fd, Data.data() + Off, N, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          pollfd P{Fd, POLLOUT, 0};
          ::poll(&P, 1, 100);
          continue;
        }
        return false;
      }
      Off += static_cast<size_t>(W);
      if (Rng && mix64(*Rng) % 16 == 0)
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
  }

  /// 1 = line out, 0 = timeout, -1 = connection gone.
  int readLine(std::string &Out, int TimeoutMs) {
    if (Fd < 0)
      return -1;
    for (;;) {
      size_t P = RxBuf.find('\n');
      if (P != std::string::npos) {
        Out.assign(RxBuf, 0, P);
        RxBuf.erase(0, P + 1);
        return 1;
      }
      pollfd PF{Fd, POLLIN, 0};
      int R = ::poll(&PF, 1, TimeoutMs);
      if (R == 0)
        return 0;
      if (R < 0) {
        if (errno == EINTR)
          continue;
        return -1;
      }
      char B[2048];
      ssize_t N = ::recv(Fd, B, sizeof(B), 0);
      if (N > 0) {
        RxBuf.append(B, static_cast<size_t>(N));
        continue;
      }
      if (N < 0 && errno == EINTR)
        continue;
      return -1;
    }
  }

  /// Abrupt teardown — no quit, no flush: the server sees a mid-stream
  /// (possibly mid-frame) disconnect, exactly the case resume must heal.
  void abortConn() { closeFd(); }

private:
  void closeFd() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }
  int Fd = -1;
  std::string RxBuf;
};

Trace traceFor(const Params &P, uint64_t Id) {
  RandomTraceParams TP;
  TP.Seed = P.Seed + Id;
  TP.StepsPerThread = P.Steps;
  TP.NumThreads = static_cast<ThreadId>(P.Threads);
  return generateRandomTrace(TP);
}

/// Differential check of the delivered verdict set against the
/// happens-before oracle over the client's own trace.
void compareVerdicts(const Trace &T, const std::set<std::string> &GotVars,
                     uint64_t Id, Result &R) {
  R.Compared = true;
  std::set<std::string> WantVars;
  RaceOracle O(T, TxnSyncSemantics::SharedVariable);
  for (const VarId &V : O.racyVars())
    WantVars.insert(V.str());
  if (GotVars != WantVars) {
    R.Diverged = true;
    std::fprintf(stderr,
                 "net-chaos: client %llu DIVERGED: wire=%zu oracle=%zu racy "
                 "var(s)\n",
                 (unsigned long long)Id, GotVars.size(), WantVars.size());
  }
}

/// The shm-transport variant: the whole reliability loop (claim, resume
/// after wedge reaps, backpressure, close handshake) lives in GoldClient;
/// the harness just publishes pre-parsed actions and diffs the verdicts.
void runClientShm(const Params &P, uint64_t Id, Result &R) {
  Trace T = traceFor(P, Id);

  client::GoldClientConfig CC;
  CC.ClientId = Id;
  CC.ShmPath = P.ShmPath;
  CC.Port = 0; // no TCP fallback: this run measures the ring transport
  // The soak may not shed: a shed action would diverge from the oracle.
  CC.BufferCapActions = T.Actions.size() + 8;
  CC.OpTimeoutNanos = P.DeadlineMs * 1000000ull;
  if (P.Trace) {
    CC.TraceFrames = true;
    CC.TraceSeed = P.TraceSeed;
    CC.TraceSampleRatePpm = P.TracePpm;
    CC.TraceSink = P.TraceSink;
  }
  client::GoldClient GC(CC);

  std::string Err;
  if (!GC.connect(Err)) {
    R.Failed = true;
    R.Why = Err;
    return;
  }
  for (const Action &A : T.Actions)
    if (!GC.publish(A, A.Kind == ActionKind::Commit ? &T.commitSets(A)
                                                    : nullptr))
      break; // stream died; closeAndCollect reports why

  std::vector<std::string> Vars;
  bool Ok = GC.closeAndCollect(Vars, Err);
  const client::GoldClientStats &S = GC.stats();
  R.Reconnects = S.Reconnects;
  R.Rewinds = S.Resyncs + S.StallRewinds;
  R.Races = Vars.size();
  if (!Ok) {
    if (Err.find("ring killed") != std::string::npos ||
        Err.find("session") != std::string::npos) {
      R.Killed = true; // chaos (slot corrupt / session death): counted
      return;
    }
    R.Failed = true;
    R.Why = Err;
    return;
  }
  std::set<std::string> GotVars(Vars.begin(), Vars.end());
  compareVerdicts(T, GotVars, Id, R);
}

void runClient(const Params &P, uint64_t Id, Result &R) {
  Trace T = traceFor(P, Id);
  std::vector<std::string> Lines;
  {
    std::istringstream In(serializeTrace(T));
    std::string L;
    while (std::getline(In, L))
      if (!L.empty())
        Lines.push_back(L);
  }

  uint64_t Rng = P.Seed * 0x9e3779b97f4a7c15ULL + Id;
  uint64_t *WriteRng = P.ChaosWrites ? &Rng : nullptr;
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(P.DeadlineMs);
  auto Expired = [&] { return std::chrono::steady_clock::now() > Deadline; };
  auto Fail = [&](const std::string &Why) {
    R.Failed = true;
    R.Why = Why;
  };

  Wire W;
  char Buf[192];
  size_t Next = 0;          ///< seq of the next line to send
  size_t SettledTo = 0;     ///< server-confirmed expect (stat/open replies)
  size_t SentSinceConn = 0; ///< drives forced reconnects
  size_t LastSettled = SIZE_MAX; ///< stat-stall detection
  unsigned StallPolls = 0;
  std::set<std::string> GotVars;

  // (Re)connects and re-opens; applies the server's resume point.
  auto OpenSession = [&]() -> bool {
    while (!Expired()) {
      if (!W.connectTo(P.Host, P.Port)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      if (P.Trace)
        proto::fmtOpenPrioClock(Buf, sizeof(Buf), Id, 1, chaosNowNanos());
      else
        proto::fmtOpen(Buf, sizeof(Buf), Id);
      if (!W.sendAll(Buf, nullptr))
        continue;
      std::string L;
      int Rd = W.readLine(L, 2000);
      if (Rd <= 0) {
        // accept-shed / accept-fail chaos closes before any reply lands.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      if (proto::hasPrefix(L, proto::Bye))
        continue; // accept-shed with an explanation
      if (proto::hasPrefix(L, proto::OkOpen)) {
        uint64_t E = 0;
        if (proto::parseExpect(L, E))
          Next = SettledTo = E;
        // A fresh `ok open <id>` keeps our position: the session was
        // created just now, so Next/SettledTo are already 0.
        SentSinceConn = 0;
        StallPolls = 0;
        LastSettled = SIZE_MAX;
        return true;
      }
      // "err open ... retry-after-ns=..." (admission backpressure) or
      // "busy" (our previous connection not yet reaped) — honor and retry.
      uint64_t WaitNs = 0;
      if (!proto::parseRetryAfter(L, WaitNs))
        WaitNs = 20000000ull;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(std::min<uint64_t>(WaitNs, 50000000)));
    }
    Fail("open: deadline expired");
    return false;
  };

  // Handles one asynchronous server reply during streaming. Returns false
  // when this connection is done for (reconnect or session death decides).
  bool SessionDead = false;
  auto Handle = [&](const std::string &L) -> bool {
    if (proto::hasPrefix(L, proto::Ping)) {
      W.sendAll("pong" + L.substr(4) + "\n", nullptr);
      return true;
    }
    if (proto::hasPrefix(L, proto::Bye))
      return false; // server closed us; the reconnect path takes over
    uint64_t Seq = 0;
    if (proto::hasPrefix(L, proto::ErrLine) && proto::parseSeq(L, Seq)) {
      if (proto::isBackpressure(L)) {
        // The refused line and everything pipelined behind it must be
        // re-sent; honor the jittered hint (capped: this is a soak).
        uint64_t WaitNs = 0;
        if (!proto::parseRetryAfter(L, WaitNs))
          WaitNs = 1000000ull;
        Next = std::min<size_t>(Next, Seq);
        ++R.Rewinds;
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(std::min<uint64_t>(WaitNs, 20000000)));
        return true;
      }
      if (proto::isResync(L)) {
        uint64_t E = 0;
        if (proto::parseExpect(L, E)) {
          Next = E;
          ++R.Rewinds;
        }
        return true;
      }
    }
    if (proto::hasPrefix(L, proto::ErrLine) &&
        (L.find(proto::ClosedMark) != std::string::npos ||
         L.find(proto::UnknownClientMark) != std::string::npos)) {
      R.Killed = true; // chaos tore the session down; loss is counted
      SessionDead = true;
      return false;
    }
    if (proto::hasPrefix(L, proto::OkStat)) {
      uint64_t E = 0;
      if (proto::parseExpect(L, E))
        SettledTo = E;
      if (L.find(proto::StateDead) != std::string::npos) {
        R.Killed = true;
        SessionDead = true;
        return false;
      }
      return true;
    }
    return true; // unknown chatter (health lines etc.): ignore
  };

  if (!OpenSession())
    return;

  // Stream until the server confirms it consumed every line.
  while (!SessionDead && !R.Failed) {
    if (Expired()) {
      Fail("stream: deadline expired");
      break;
    }
    // Drain any pending replies without blocking.
    bool Alive = true;
    std::string L;
    int Rd = 0;
    while (Alive && (Rd = W.readLine(L, 0)) == 1)
      Alive = Handle(L);
    if (Alive && Rd == -1)
      Alive = false;
    if (!Alive) {
      if (SessionDead)
        break;
      ++R.Reconnects;
      if (!OpenSession())
        return;
      continue;
    }
    if (SettledTo >= Lines.size())
      break; // everything consumed server-side
    if (P.ReconnectEvery && SentSinceConn >= P.ReconnectEvery) {
      // Forced mid-stream reconnect — sometimes mid-frame, so the server
      // must drop a partial frame and resume us exactly at its expect.
      if (mix64(Rng) % 2) {
        std::snprintf(Buf, sizeof(Buf), "line %llu %llu half-a-",
                      (unsigned long long)Id, (unsigned long long)Next);
        W.sendAll(Buf, nullptr); // no newline: dangling partial frame
      }
      W.abortConn();
      ++R.Reconnects;
      if (!OpenSession())
        return;
      continue;
    }
    if (Next < Lines.size()) {
      // Optimistic pipelining: a burst of sequenced lines with no waiting
      // for acks. Backpressure/resync replies rewind Next when needed.
      size_t Batch =
          std::min<size_t>(Lines.size() - Next, 1 + mix64(Rng) % 12);
      std::string Out;
      for (size_t I = 0; I != Batch; ++I) {
        // Traced runs stamp the send time, not the (long past) generation
        // time: a rewound/retransmitted line gets a fresh origin, which is
        // what the e2e attribution should measure anyway.
        if (P.Trace)
          proto::fmtLineHeadTraced(Buf, sizeof(Buf), Id, Next + I,
                                   chaosNowNanos());
        else
          proto::fmtLineHead(Buf, sizeof(Buf), Id, Next + I);
        Out += Buf;
        Out += Lines[Next + I];
        Out += '\n';
      }
      if (!W.sendAll(Out, WriteRng)) {
        ++R.Reconnects;
        if (!OpenSession())
          return;
        continue;
      }
      Next += Batch;
      SentSinceConn += Batch;
    } else {
      // All sent; poll the server's confirmed position.
      proto::fmtStat(Buf, sizeof(Buf), Id);
      if (!W.sendAll(Buf, nullptr))
        continue; // send failed; the drain loop above reconnects
      if (W.readLine(L, 500) == 1 && !Handle(L))
        continue;
      if (SettledTo < Next) {
        // Stat-stall rewind: everything is sent but the server's confirmed
        // position has stopped moving. A backpressure reply that was shed
        // from the server's bounded write queue leaves both sides waiting
        // forever — after a few non-progressing polls, rewind our cursor to
        // the confirmed position and re-send the tail.
        if (SettledTo == LastSettled) {
          if (++StallPolls >= 3 && SettledTo < Next) {
            Next = SettledTo;
            StallPolls = 0;
            ++R.Rewinds;
          }
        } else {
          LastSettled = SettledTo;
          StallPolls = 0;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  if (R.Failed || R.Killed)
    return;

  // Close and collect verdicts. close is idempotent, so a shed reply or a
  // verdict-queue backpressure refusal is healed by re-sending it.
  bool ClosedOk = false;
  for (unsigned Try = 0; !ClosedOk && !R.Killed; ++Try) {
    if (Expired() || Try > 200) {
      Fail("close: no ok after retries");
      return;
    }
    if (!W.connected()) {
      ++R.Reconnects;
      if (!OpenSession())
        return;
    }
    proto::fmtClose(Buf, sizeof(Buf), Id);
    if (!W.sendAll(Buf, nullptr)) {
      W.abortConn();
      continue;
    }
    std::string L;
    for (;;) {
      int Rd = W.readLine(L, 2000);
      if (Rd == 0)
        break; // reply shed; re-send close
      if (Rd < 0) {
        W.abortConn();
        break;
      }
      if (proto::hasPrefix(L, proto::Ping)) {
        W.sendAll("pong" + L.substr(4) + "\n", nullptr);
        continue;
      }
      if (proto::hasPrefix(L, proto::Race)) {
        std::string Var;
        if (proto::raceVar(L, Var)) {
          GotVars.insert(Var);
          ++R.Races;
        }
        continue;
      }
      if (proto::hasPrefix(L, proto::OkClose)) {
        ClosedOk = true;
        break;
      }
      if (L.find("backpressure") != std::string::npos) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        break; // verdict queue needs room; re-send close
      }
      if (L.find(proto::UnknownClientMark) != std::string::npos) {
        R.Killed = true;
        break;
      }
    }
  }
  if (R.Killed)
    return;

  // Threaded servers may produce verdicts after the close ack; poll until
  // the session reports dead with nothing further to hand over.
  while (!Expired()) {
    proto::fmtVerdicts(Buf, sizeof(Buf), Id);
    if (!W.connected() || !W.sendAll(Buf, nullptr))
      break; // already drained everything via close; conn gone is fine
    std::string L;
    size_t Batch = 0;
    bool Done = false, Lost = false;
    for (;;) {
      int Rd = W.readLine(L, 2000);
      if (Rd <= 0) {
        Lost = true;
        break;
      }
      if (proto::hasPrefix(L, proto::Ping)) {
        W.sendAll("pong" + L.substr(4) + "\n", nullptr);
        continue;
      }
      if (proto::hasPrefix(L, proto::Race)) {
        std::string Var;
        if (proto::raceVar(L, Var)) {
          GotVars.insert(Var);
          ++R.Races;
        }
        ++Batch;
        continue;
      }
      if (proto::hasPrefix(L, proto::OkVerdicts)) {
        Done = Batch == 0 && L.find(proto::StateDead) != std::string::npos;
        break;
      }
      if (L.find("backpressure") != std::string::npos ||
          L.find(proto::UnknownClientMark) != std::string::npos)
        break;
    }
    if (Lost || Done)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Differential validation against the happens-before oracle.
  compareVerdicts(T, GotVars, Id, R);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: net_chaos_client --port <p> [--host <addr>] [--clients <k>]\n"
      "         [--steps <n>] [--threads <n>] [--seed <n>]\n"
      "         [--reconnect-every <lines>] [--no-chaos-writes]\n"
      "         [--deadline-ms <n>]\n"
      "   or: net_chaos_client --shm <path> [--clients <k>] [--steps <n>]\n"
      "         [--threads <n>] [--seed <n>] [--deadline-ms <n>]\n"
      "         [--shm-stall-ppm <n>] [--shm-corrupt-ppm <n>]\n"
      "         [--stall-micros <n>]\n"
      "  tracing (either mode): [--trace] [--trace-ppm <n>]\n"
      "         [--trace-seed <n>] [--trace-out <client-spans.json>]\n");
  return 126;
}

} // namespace

int main(int Argc, char **Argv) {
  Params P;
  for (int I = 1; I != Argc; ++I) {
    std::string A = Argv[I];
    auto Val = [&]() -> const char * {
      if (I + 1 >= Argc)
        std::exit(usage());
      return Argv[++I];
    };
    if (A == "--host")
      P.Host = Val();
    else if (A == "--port")
      P.Port = static_cast<uint16_t>(std::strtoul(Val(), nullptr, 10));
    else if (A == "--clients")
      P.Clients = std::strtoull(Val(), nullptr, 10);
    else if (A == "--steps")
      P.Steps = static_cast<unsigned>(std::strtoul(Val(), nullptr, 10));
    else if (A == "--threads")
      P.Threads = static_cast<unsigned>(std::strtoul(Val(), nullptr, 10));
    else if (A == "--seed")
      P.Seed = std::strtoull(Val(), nullptr, 10);
    else if (A == "--reconnect-every")
      P.ReconnectEvery = std::strtoull(Val(), nullptr, 10);
    else if (A == "--no-chaos-writes")
      P.ChaosWrites = false;
    else if (A == "--deadline-ms")
      P.DeadlineMs = std::strtoull(Val(), nullptr, 10);
    else if (A == "--shm")
      P.ShmPath = Val();
    else if (A == "--shm-stall-ppm")
      P.ShmStallPpm =
          static_cast<uint32_t>(std::strtoul(Val(), nullptr, 10));
    else if (A == "--shm-corrupt-ppm")
      P.ShmCorruptPpm =
          static_cast<uint32_t>(std::strtoul(Val(), nullptr, 10));
    else if (A == "--stall-micros")
      P.StallMicros = static_cast<unsigned>(std::strtoul(Val(), nullptr, 10));
    else if (A == "--trace")
      P.Trace = true;
    else if (A == "--trace-ppm") {
      P.TracePpm = static_cast<uint32_t>(std::strtoul(Val(), nullptr, 10));
      P.Trace = true;
    } else if (A == "--trace-seed")
      P.TraceSeed = std::strtoull(Val(), nullptr, 10);
    else if (A == "--trace-out") {
      P.TraceOut = Val();
      P.Trace = true;
    } else
      return usage();
  }
  bool UseShm = !P.ShmPath.empty();
  if ((!UseShm && !P.Port) || !P.Clients)
    return usage();

  // The shm failpoints fire on the producer side, i.e. in THIS process:
  // the harness wedges/corrupts its own rings and the server must recover.
  std::unique_ptr<FailpointScope> FP;
  if (P.ShmStallPpm || P.ShmCorruptPpm) {
    FailpointConfig FC;
    FC.Seed = P.Seed;
    FC.RatePpm[static_cast<size_t>(Failpoint::ShmProducerStall)] =
        P.ShmStallPpm;
    FC.RatePpm[static_cast<size_t>(Failpoint::ShmSlotCorrupt)] =
        P.ShmCorruptPpm;
    if (P.StallMicros)
      FC.StallMicros = P.StallMicros;
    FP = std::make_unique<FailpointScope>(FC);
  }

  // One span sink shared by every client thread (TraceEventSink is
  // thread-safe); written as a gold-trace-v1 file after the join so it can
  // be merged with the server's --trace-out via tools/merge_traces.py.
  std::unique_ptr<TraceEventSink> Sink;
  if (P.Trace && !P.TraceOut.empty()) {
    Sink = std::make_unique<TraceEventSink>(1u << 20,
                                            static_cast<uint32_t>(::getpid()));
    P.TraceSink = Sink.get();
  }

  std::vector<Result> Results(P.Clients);
  std::vector<std::thread> Threads;
  Threads.reserve(P.Clients);
  for (size_t I = 0; I != P.Clients; ++I)
    Threads.emplace_back([&, I] {
      if (UseShm)
        runClientShm(P, static_cast<uint64_t>(I + 1), Results[I]);
      else
        runClient(P, static_cast<uint64_t>(I + 1), Results[I]);
    });
  for (std::thread &T : Threads)
    T.join();

  size_t Compared = 0, Killed = 0, Failed = 0, Diverged = 0, Races = 0,
         Reconnects = 0, Rewinds = 0;
  for (size_t I = 0; I != Results.size(); ++I) {
    const Result &R = Results[I];
    Compared += R.Compared;
    Killed += R.Killed;
    Failed += R.Failed;
    Diverged += R.Diverged;
    Races += R.Races;
    Reconnects += R.Reconnects;
    Rewinds += R.Rewinds;
    if (R.Failed)
      std::fprintf(stderr, "net-chaos: client %zu failed: %s\n", I + 1,
                   R.Why.c_str());
  }
  std::printf("net-chaos clients=%zu compared=%zu killed=%zu failed=%zu "
              "diverged=%zu races=%zu reconnects=%zu rewinds=%zu\n",
              P.Clients, Compared, Killed, Failed, Diverged, Races,
              Reconnects, Rewinds);
  if (Sink && !Sink->writeFile(P.TraceOut)) {
    std::fprintf(stderr, "net-chaos: failed to write %s\n",
                 P.TraceOut.c_str());
    return 1;
  }
  if (Diverged || Failed || !Compared)
    return 1;
  return 0;
}
