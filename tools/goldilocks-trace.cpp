//===- tools/goldilocks-trace.cpp - Trace replay CLI ----------------------===//
///
/// Command-line race checker: reads a linearized execution in the TraceIO
/// text format (or generates a random one) and replays it through the
/// requested detectors.
///
///   goldilocks-trace [options] [trace-file]
///     --detector goldilocks|reference|eraser|vectorclock|all   (default: goldilocks)
///     --semantics shared|atomic|w2r    commit synchronization (default: shared)
///     --random <seed>                  generate a random trace instead
///     --dump                           print the (possibly generated) trace
///     --stats                          print engine statistics
///     --health                         print the engine's resource/health snapshot
///     --max-cells <n>                  cap the synchronization event list
///     --max-infos <n>                  cap the live Info records
///     --max-bytes <n>                  coarse detector byte budget
///     --oracle                         also print the happens-before oracle verdict
///     --resume-on-error                skip malformed trace lines (streaming
///                                      ingestion) instead of aborting
///     --error-budget <n>               max malformed lines tolerated with
///                                      --resume-on-error (default 10)
///     --watchdog-ms <n>                run the supervision watchdog at this
///                                      sample period (goldilocks only)
///     --events                         print the supervision event ring at exit
///     --stats-json <path>              write a gold-bench-v1 JSON artifact with
///                                      the engine config, stats and verdicts of
///                                      the goldilocks run (goldilocks only)
///
/// Exit code: number of distinct racy variables found by the last detector
/// run (capped at 125), or 126 on usage / parse errors / exceeded error
/// budget.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "detectors/Eraser.h"
#include "detectors/GoldilocksDetectors.h"
#include "detectors/VectorClockDetector.h"
#include "event/RandomTrace.h"
#include "event/TraceIO.h"
#include "hb/HbOracle.h"
#include "support/Supervisor.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

using namespace gold;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: goldilocks-trace [--detector "
               "goldilocks|reference|eraser|vectorclock|all]\n"
               "                        [--semantics shared|atomic|w2r] "
               "[--random <seed>]\n"
               "                        [--max-cells <n>] [--max-infos <n>] "
               "[--max-bytes <n>]\n"
               "                        [--dump] [--stats] [--health] "
               "[--oracle] [trace-file]\n"
               "                        [--resume-on-error] "
               "[--error-budget <n>]\n"
               "                        [--watchdog-ms <n>] [--events] "
               "[--stats-json <path>]\n");
  return 126;
}

size_t runDetector(RaceDetector &D, const Trace &T, bool WantStats,
                   bool WantHealth, GoldilocksEngine *Engine) {
  auto Races = D.runTrace(T);
  std::set<uint64_t> Vars;
  for (const RaceReport &R : Races) {
    std::printf("%-12s %s\n", D.name(), R.str().c_str());
    Vars.insert(R.Var.key());
  }
  std::printf("%-12s %zu race(s) on %zu variable(s)\n", D.name(),
              Races.size(), Vars.size());
  if (WantHealth) {
    if (auto H = D.health())
      std::printf("%-12s health: %s\n", D.name(), H->str().c_str());
    else
      std::printf("%-12s health: not supported\n", D.name());
  }
  if (WantStats && Engine) {
    EngineStats S = Engine->stats();
    std::printf("%-12s accesses=%llu pair-checks=%llu sync-events=%llu "
                "short-circuit=%.2f%% full-walks=%llu cells-walked=%llu "
                "gc-runs=%llu\n",
                D.name(), (unsigned long long)S.Accesses,
                (unsigned long long)S.PairChecks,
                (unsigned long long)S.SyncEvents,
                S.shortCircuitFraction() * 100.0,
                (unsigned long long)S.FullWalks,
                (unsigned long long)S.CellsWalked,
                (unsigned long long)S.GcRuns);
  }
  return Vars.size();
}

} // namespace

int main(int Argc, char **Argv) {
  std::string DetectorName = "goldilocks";
  TxnSyncSemantics Semantics = TxnSyncSemantics::SharedVariable;
  bool Dump = false, WantStats = false, WantHealth = false, WantOracle = false;
  bool Random = false;
  bool ResumeOnError = false, WantEvents = false;
  size_t ErrorBudget = 10;
  unsigned WatchdogMs = 0;
  uint64_t Seed = 1;
  size_t MaxCells = 0, MaxInfos = 0, MaxBytes = 0;
  std::string File, StatsJsonPath;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--detector") {
      const char *V = Next();
      if (!V)
        return usage();
      DetectorName = V;
    } else if (Arg == "--semantics") {
      const char *V = Next();
      if (!V)
        return usage();
      if (!std::strcmp(V, "shared"))
        Semantics = TxnSyncSemantics::SharedVariable;
      else if (!std::strcmp(V, "atomic"))
        Semantics = TxnSyncSemantics::AtomicOrder;
      else if (!std::strcmp(V, "w2r"))
        Semantics = TxnSyncSemantics::WriterToReader;
      else
        return usage();
    } else if (Arg == "--random") {
      const char *V = Next();
      if (!V)
        return usage();
      Random = true;
      Seed = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--max-cells" || Arg == "--max-infos" ||
               Arg == "--max-bytes") {
      const char *V = Next();
      if (!V)
        return usage();
      char *End = nullptr;
      size_t N = std::strtoull(V, &End, 10);
      if (End == V || *End || !N) {
        std::fprintf(stderr, "%s wants a positive integer, got '%s'\n",
                     Arg.c_str(), V);
        return 126;
      }
      (Arg == "--max-cells" ? MaxCells
                            : Arg == "--max-infos" ? MaxInfos : MaxBytes) = N;
    } else if (Arg == "--error-budget" || Arg == "--watchdog-ms") {
      const char *V = Next();
      if (!V)
        return usage();
      char *End = nullptr;
      size_t N = std::strtoull(V, &End, 10);
      if (End == V || *End) {
        std::fprintf(stderr, "%s wants a non-negative integer, got '%s'\n",
                     Arg.c_str(), V);
        return 126;
      }
      if (Arg == "--error-budget")
        ErrorBudget = N;
      else
        WatchdogMs = static_cast<unsigned>(N);
    } else if (Arg == "--stats-json") {
      const char *V = Next();
      if (!V)
        return usage();
      StatsJsonPath = V;
    } else if (Arg == "--resume-on-error") {
      ResumeOnError = true;
    } else if (Arg == "--events") {
      WantEvents = true;
    } else if (Arg == "--dump") {
      Dump = true;
    } else if (Arg == "--stats") {
      WantStats = true;
    } else if (Arg == "--health") {
      WantHealth = true;
    } else if (Arg == "--oracle") {
      WantOracle = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      return usage();
    } else {
      File = Arg;
    }
  }

  Trace T;
  if (Random) {
    RandomTraceParams P;
    P.Seed = Seed;
    T = generateRandomTrace(P);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
      return 126;
    }
    // Streaming ingestion: one line at a time through TraceParser. A failed
    // feedLine leaves the trace unchanged, which is what lets
    // --resume-on-error skip the line and keep going.
    TraceParser P;
    size_t Bad = 0;
    std::string Line;
    while (std::getline(In, Line)) {
      if (P.feedLine(Line))
        continue;
      if (!ResumeOnError) {
        std::fprintf(stderr, "error: %s: line %zu: %s\n", File.c_str(),
                     P.lineNo(), P.error().c_str());
        return 126;
      }
      ++Bad;
      if (Bad <= 5)
        std::fprintf(stderr, "warning: %s: line %zu: %s (skipped)\n",
                     File.c_str(), P.lineNo(), P.error().c_str());
      if (Bad > ErrorBudget) {
        std::fprintf(stderr,
                     "error: %s: %zu malformed line(s) exceed the error "
                     "budget (%zu)\n",
                     File.c_str(), Bad, ErrorBudget);
        return 126;
      }
    }
    if (Bad > 0)
      std::fprintf(stderr,
                   "resume-on-error: skipped %zu malformed line(s) "
                   "(budget %zu)\n",
                   Bad, ErrorBudget);
    T = P.take();
  } else {
    std::fprintf(stderr, "error: no trace file (use --random <seed> to "
                         "generate one)\n");
    return usage();
  }

  if (Dump)
    std::fputs(serializeTrace(T).c_str(), stdout);

  size_t RacyVars = 0;
  auto RunOne = [&](const std::string &Name) -> bool {
    if (Name == "goldilocks") {
      EngineConfig C;
      C.Semantics = Semantics;
      C.MaxCells = MaxCells;
      C.MaxInfoRecords = MaxInfos;
      C.MaxBytes = MaxBytes;
      GoldilocksDetector D(C);
      SupervisorConfig SC;
      if (WatchdogMs > 0)
        SC.SamplePeriodMillis = WatchdogMs;
      Supervisor Sup(superviseEngine(D.engine()), SC);
      if (WatchdogMs > 0)
        Sup.start();
      RacyVars = runDetector(D, T, WantStats, WantHealth, &D.engine());
      Sup.stop();
      if (!StatsJsonPath.empty()) {
        JsonWriter J;
        jsonBenchHeader(J, "goldilocks-trace");
        J.kv("detector", "goldilocks");
        J.kv("trace_actions", static_cast<uint64_t>(T.Actions.size()));
        J.kv("trace_threads", static_cast<uint64_t>(T.threadCount()));
        J.kv("racy_vars", static_cast<uint64_t>(RacyVars));
        EngineHealth H = D.engine().health();
        J.kv("approx_bytes", static_cast<uint64_t>(H.ApproxBytes));
        J.kv("degradation_level", static_cast<uint64_t>(H.DegradationLevel));
        J.kv("globally_degraded", H.GloballyDegraded);
        jsonEngineConfig(J, "config", C);
        jsonEngineStats(J, "stats", D.engine().stats());
        J.endObject();
        if (!J.writeFile(StatsJsonPath)) {
          std::fprintf(stderr, "error: failed to write %s\n",
                       StatsJsonPath.c_str());
          return 126;
        }
      }
      if (WantEvents) {
        auto Events = Sup.events();
        std::printf("supervision events (%zu recorded, %llu dropped):\n",
                    Events.size(),
                    (unsigned long long)Sup.ring().dropped());
        for (const SupervisionEvent &E : Events)
          std::printf("%s\n", E.str().c_str());
      }
    } else if (Name == "reference") {
      GoldilocksReference::Config C;
      C.Semantics = Semantics;
      GoldilocksReferenceDetector D(C);
      RacyVars = runDetector(D, T, false, WantHealth, nullptr);
    } else if (Name == "eraser") {
      EraserDetector D;
      RacyVars = runDetector(D, T, false, WantHealth, nullptr);
    } else if (Name == "vectorclock") {
      VectorClockDetector::Config C;
      C.Semantics = Semantics;
      VectorClockDetector D(C);
      RacyVars = runDetector(D, T, false, WantHealth, nullptr);
    } else {
      return false;
    }
    return true;
  };

  if (DetectorName == "all") {
    for (const char *N : {"goldilocks", "reference", "eraser", "vectorclock"})
      RunOne(N);
  } else if (!RunOne(DetectorName)) {
    return usage();
  }

  if (WantOracle) {
    RaceOracle O(T, Semantics);
    std::printf("%-12s %zu racy variable(s)\n", "oracle", O.racyVars().size());
  }
  return static_cast<int>(RacyVars > 125 ? 125 : RacyVars);
}
