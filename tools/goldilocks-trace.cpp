//===- tools/goldilocks-trace.cpp - Trace replay CLI ----------------------===//
///
/// Command-line race checker: reads a linearized execution in the TraceIO
/// text format (or generates a random one) and replays it through the
/// requested detectors. Run with --help for the full flag list — the usage
/// text and the parser are generated from one table (Options[] below) so
/// they cannot drift apart.
///
/// Exit code: number of distinct racy variables found by the last detector
/// run (capped at 125), or 126 on usage / parse errors / exceeded error
/// budget.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchJson.h"
#include "detectors/Eraser.h"
#include "detectors/GoldilocksDetectors.h"
#include "detectors/VectorClockDetector.h"
#include "event/RandomTrace.h"
#include "event/TraceIO.h"
#include "hb/HbOracle.h"
#include "support/Supervisor.h"
#include "support/Telemetry.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

using namespace gold;

namespace {

/// Set from the SIGINT/SIGTERM handler; polled by the replay loop between
/// actions. The shutdown is crash-only: the replay stops wherever it is,
/// the engine quiesces, and the tool still emits every requested artifact
/// (--stats-json, --metrics-json, --health) before exiting.
std::atomic<bool> Interrupted{false};

void onSignal(int) { Interrupted.store(true, std::memory_order_relaxed); }

void installSignalHandlers() {
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
}

//===----------------------------------------------------------------------===//
// Flag table: the single source of truth for the usage text AND the parser.
//===----------------------------------------------------------------------===//

enum class Opt {
  Detector,
  Semantics,
  Random,
  Dump,
  Stats,
  Health,
  MaxCells,
  MaxInfos,
  MaxBytes,
  Tier,
  SamplingPpm,
  SamplingBudget,
  Oracle,
  ResumeOnError,
  ErrorBudget,
  WatchdogMs,
  Events,
  StatsJson,
  Telemetry,
  MetricsJson,
  RaceReportPath,
  TraceOut,
  Help,
};

struct OptSpec {
  Opt Id;
  const char *Flag;
  const char *Arg;  ///< operand placeholder, or nullptr for a boolean flag
  const char *Help; ///< one-line description for the usage text
};

constexpr OptSpec Options[] = {
    {Opt::Detector, "--detector", "goldilocks|reference|eraser|vectorclock|all",
     "detector(s) to run (default: goldilocks)"},
    {Opt::Semantics, "--semantics", "shared|atomic|w2r",
     "commit synchronization semantics (default: shared)"},
    {Opt::Random, "--random", "<seed>", "generate a random trace instead"},
    {Opt::Dump, "--dump", nullptr, "print the (possibly generated) trace"},
    {Opt::Stats, "--stats", nullptr, "print engine statistics"},
    {Opt::Health, "--health", nullptr,
     "print the engine's resource/health snapshot"},
    {Opt::MaxCells, "--max-cells", "<n>", "cap the synchronization event list"},
    {Opt::MaxInfos, "--max-infos", "<n>", "cap the live Info records"},
    {Opt::MaxBytes, "--max-bytes", "<n>", "coarse detector byte budget"},
    {Opt::Tier, "--tier", "precise|tiered|sampling",
     "precision tier: tiered adds the lossless prefilter, sampling bounds "
     "per-access cost (goldilocks only, default: precise)"},
    {Opt::SamplingPpm, "--sampling-ppm", "<0..1000000>",
     "sampling tier: parts-per-million of past-budget accesses processed"},
    {Opt::SamplingBudget, "--sampling-budget", "<n>",
     "sampling tier: per-variable leading accesses always processed"},
    {Opt::Oracle, "--oracle", nullptr,
     "also print the happens-before oracle verdict"},
    {Opt::ResumeOnError, "--resume-on-error", nullptr,
     "skip malformed trace lines (streaming ingestion) instead of aborting"},
    {Opt::ErrorBudget, "--error-budget", "<n>",
     "max malformed lines tolerated with --resume-on-error (default 10)"},
    {Opt::WatchdogMs, "--watchdog-ms", "<n>",
     "run the supervision watchdog at this sample period (goldilocks only)"},
    {Opt::Events, "--events", nullptr,
     "print the supervision event ring at exit"},
    {Opt::StatsJson, "--stats-json", "<path>",
     "write a gold-bench-v1 JSON artifact with the engine config, stats, "
     "health and verdicts of the goldilocks run (goldilocks only)"},
    {Opt::Telemetry, "--telemetry", "off|counters|full",
     "engine telemetry level: histograms and the flight recorder need "
     "'full' (default: counters)"},
    {Opt::MetricsJson, "--metrics-json", "<path>",
     "write a gold-metrics-v1 JSON snapshot of the engine telemetry "
     "(goldilocks only)"},
    {Opt::RaceReportPath, "--race-report", "<path>",
     "write every race as structured JSON (witness pair + provenance) and "
     "print the verbose human rendering (goldilocks only)"},
    {Opt::TraceOut, "--trace-out", "<path>",
     "write Chrome trace-event spans for engine phases (publish, lazy "
     "walk, GC, grace wait); load in Perfetto or chrome://tracing"},
    {Opt::Help, "--help", nullptr, "print this help"},
};

const OptSpec *findOpt(const std::string &Flag) {
  for (const OptSpec &S : Options)
    if (Flag == S.Flag)
      return &S;
  return nullptr;
}

int usage(FILE *To = stderr) {
  std::fprintf(To, "usage: goldilocks-trace [options] [trace-file]\n");
  for (const OptSpec &S : Options) {
    char Left[64];
    std::snprintf(Left, sizeof(Left), "%s%s%s", S.Flag, S.Arg ? " " : "",
                  S.Arg ? S.Arg : "");
    // Wrap the help text by hand only when it is long; one line per flag
    // keeps the block greppable.
    std::fprintf(To, "  %-52s %s\n", Left, S.Help);
  }
  return 126;
}

struct RunOutput {
  std::vector<RaceReport> Races;
  size_t RacyVars = 0;
};

RunOutput runDetector(RaceDetector &D, const Trace &T, bool WantStats,
                      bool WantHealth, bool Verbose,
                      GoldilocksEngine *Engine) {
  RunOutput Out;
  Out.Races = D.runTrace(T, &Interrupted);
  if (Interrupted.load(std::memory_order_relaxed))
    std::fprintf(stderr,
                 "%s: interrupted; replay stopped early, emitting final "
                 "artifacts\n",
                 D.name());
  std::set<uint64_t> Vars;
  for (const RaceReport &R : Out.Races) {
    std::printf("%-12s %s\n", D.name(),
                (Verbose ? R.strVerbose() : R.str()).c_str());
    Vars.insert(R.Var.key());
  }
  Out.RacyVars = Vars.size();
  std::printf("%-12s %zu race(s) on %zu variable(s)\n", D.name(),
              Out.Races.size(), Vars.size());
  if (WantHealth) {
    if (auto H = D.health())
      std::printf("%-12s health: %s\n", D.name(), H->str().c_str());
    else
      std::printf("%-12s health: not supported\n", D.name());
  }
  if (WantStats && Engine) {
    EngineStats S = Engine->stats();
    std::printf("%-12s accesses=%llu pair-checks=%llu sync-events=%llu "
                "short-circuit=%.2f%% full-walks=%llu cells-walked=%llu "
                "gc-runs=%llu\n",
                D.name(), (unsigned long long)S.Accesses,
                (unsigned long long)S.PairChecks,
                (unsigned long long)S.SyncEvents,
                S.shortCircuitFraction() * 100.0,
                (unsigned long long)S.FullWalks,
                (unsigned long long)S.CellsWalked,
                (unsigned long long)S.GcRuns);
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  installSignalHandlers();
  std::string DetectorName = "goldilocks";
  TxnSyncSemantics Semantics = TxnSyncSemantics::SharedVariable;
  bool Dump = false, WantStats = false, WantHealth = false, WantOracle = false;
  bool Random = false;
  bool ResumeOnError = false, WantEvents = false;
  size_t ErrorBudget = 10;
  unsigned WatchdogMs = 0;
  uint64_t Seed = 1;
  size_t MaxCells = 0, MaxInfos = 0, MaxBytes = 0;
  TierMode Tier = TierMode::Precise;
  uint32_t SamplingPpm = 10000, SamplingBudget = 32;
  TelemetryLevel TelLevel = TelemetryLevel::Counters;
  std::string File, StatsJsonPath, MetricsJsonPath, RaceReportPath,
      TraceOutPath;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.empty() || Arg[0] != '-') {
      File = Arg;
      continue;
    }
    const OptSpec *S = findOpt(Arg);
    if (!S)
      return usage();
    const char *V = nullptr;
    if (S->Arg) {
      if (I + 1 >= Argc)
        return usage();
      V = Argv[++I];
    }
    // Shared operand parsers keyed off the table's placeholder text.
    auto ParseUnsigned = [&](bool AllowZero) -> size_t {
      char *End = nullptr;
      size_t N = std::strtoull(V, &End, 10);
      if (End == V || *End || (!AllowZero && !N)) {
        std::fprintf(stderr, "%s wants a %s integer, got '%s'\n", S->Flag,
                     AllowZero ? "non-negative" : "positive", V);
        std::exit(126);
      }
      return N;
    };
    switch (S->Id) {
    case Opt::Detector:
      DetectorName = V;
      break;
    case Opt::Semantics:
      if (!std::strcmp(V, "shared"))
        Semantics = TxnSyncSemantics::SharedVariable;
      else if (!std::strcmp(V, "atomic"))
        Semantics = TxnSyncSemantics::AtomicOrder;
      else if (!std::strcmp(V, "w2r"))
        Semantics = TxnSyncSemantics::WriterToReader;
      else
        return usage();
      break;
    case Opt::Random:
      Random = true;
      Seed = std::strtoull(V, nullptr, 10);
      break;
    case Opt::Dump:
      Dump = true;
      break;
    case Opt::Stats:
      WantStats = true;
      break;
    case Opt::Health:
      WantHealth = true;
      break;
    case Opt::MaxCells:
      MaxCells = ParseUnsigned(/*AllowZero=*/false);
      break;
    case Opt::MaxInfos:
      MaxInfos = ParseUnsigned(/*AllowZero=*/false);
      break;
    case Opt::MaxBytes:
      MaxBytes = ParseUnsigned(/*AllowZero=*/false);
      break;
    case Opt::Tier:
      if (!parseTierMode(V, Tier)) {
        std::fprintf(stderr,
                     "--tier wants precise|tiered|sampling, got '%s'\n", V);
        return 126;
      }
      break;
    case Opt::SamplingPpm: {
      size_t N = ParseUnsigned(/*AllowZero=*/true);
      if (N > 1000000) {
        std::fprintf(stderr, "--sampling-ppm wants 0..1000000, got '%s'\n", V);
        return 126;
      }
      SamplingPpm = static_cast<uint32_t>(N);
      break;
    }
    case Opt::SamplingBudget:
      SamplingBudget =
          static_cast<uint32_t>(ParseUnsigned(/*AllowZero=*/true));
      break;
    case Opt::Oracle:
      WantOracle = true;
      break;
    case Opt::ResumeOnError:
      ResumeOnError = true;
      break;
    case Opt::ErrorBudget:
      ErrorBudget = ParseUnsigned(/*AllowZero=*/true);
      break;
    case Opt::WatchdogMs:
      WatchdogMs = static_cast<unsigned>(ParseUnsigned(/*AllowZero=*/true));
      break;
    case Opt::Events:
      WantEvents = true;
      break;
    case Opt::StatsJson:
      StatsJsonPath = V;
      break;
    case Opt::Telemetry:
      if (!parseTelemetryLevel(V, TelLevel)) {
        std::fprintf(stderr, "--telemetry wants off|counters|full, got '%s'\n",
                     V);
        return 126;
      }
      break;
    case Opt::MetricsJson:
      MetricsJsonPath = V;
      break;
    case Opt::RaceReportPath:
      RaceReportPath = V;
      break;
    case Opt::TraceOut:
      TraceOutPath = V;
      break;
    case Opt::Help:
      usage(stdout);
      return 0;
    }
  }

  Trace T;
  if (Random) {
    RandomTraceParams P;
    P.Seed = Seed;
    T = generateRandomTrace(P);
  } else if (!File.empty()) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
      return 126;
    }
    // Streaming ingestion: one line at a time through TraceParser. A failed
    // feedLine leaves the trace unchanged, which is what lets
    // --resume-on-error skip the line and keep going.
    TraceParser P;
    size_t Bad = 0;
    std::string Line;
    while (std::getline(In, Line)) {
      if (P.feedLine(Line))
        continue;
      if (!ResumeOnError) {
        std::fprintf(stderr, "error: %s: line %zu: %s\n", File.c_str(),
                     P.lineNo(), P.error().c_str());
        return 126;
      }
      ++Bad;
      if (Bad <= 5)
        std::fprintf(stderr, "warning: %s: line %zu: %s (skipped)\n",
                     File.c_str(), P.lineNo(), P.error().c_str());
      if (Bad > ErrorBudget) {
        std::fprintf(stderr,
                     "error: %s: %zu malformed line(s) exceed the error "
                     "budget (%zu)\n",
                     File.c_str(), Bad, ErrorBudget);
        return 126;
      }
    }
    if (Bad > 0)
      std::fprintf(stderr,
                   "resume-on-error: skipped %zu malformed line(s) "
                   "(budget %zu)\n",
                   Bad, ErrorBudget);
    T = P.take();
  } else {
    std::fprintf(stderr, "error: no trace file (use --random <seed> to "
                         "generate one)\n");
    return usage();
  }

  if (Dump)
    std::fputs(serializeTrace(T).c_str(), stdout);

  size_t RacyVars = 0;
  auto RunOne = [&](const std::string &Name) -> bool {
    if (Name == "goldilocks") {
      EngineConfig C;
      C.Semantics = Semantics;
      C.MaxCells = MaxCells;
      C.MaxInfoRecords = MaxInfos;
      C.MaxBytes = MaxBytes;
      C.Tier = Tier;
      C.SamplingRatePpm = SamplingPpm;
      C.SamplingBudget = SamplingBudget;
      C.Telemetry = TelLevel;
      GoldilocksDetector D(C);
      TraceEventSink Sink;
      if (!TraceOutPath.empty())
        D.engine().attachTraceSink(&Sink);
      SupervisorConfig SC;
      if (WatchdogMs > 0)
        SC.SamplePeriodMillis = WatchdogMs;
      Supervisor Sup(superviseEngine(D.engine()), SC);
      if (WatchdogMs > 0)
        Sup.start();
      RunOutput R = runDetector(D, T, WantStats, WantHealth,
                                /*Verbose=*/!RaceReportPath.empty(),
                                &D.engine());
      RacyVars = R.RacyVars;
      Sup.stop();
      if (Interrupted.load(std::memory_order_relaxed))
        D.engine().quiesce(); // crash-only: settle state, then dump
      D.engine().attachTraceSink(nullptr);
      if (!StatsJsonPath.empty()) {
        JsonWriter J;
        jsonBenchHeader(J, "goldilocks-trace");
        J.kv("detector", "goldilocks");
        J.kv("trace_actions", static_cast<uint64_t>(T.Actions.size()));
        J.kv("trace_threads", static_cast<uint64_t>(T.threadCount()));
        J.kv("racy_vars", static_cast<uint64_t>(RacyVars));
        J.kv("interrupted", Interrupted.load(std::memory_order_relaxed));
        J.key("health");
        D.engine().health().toJson(J);
        jsonEngineConfig(J, "config", C);
        jsonEngineStats(J, "stats", D.engine().stats());
        J.endObject();
        if (!J.writeFile(StatsJsonPath)) {
          std::fprintf(stderr, "error: failed to write %s\n",
                       StatsJsonPath.c_str());
          std::exit(126);
        }
      }
      if (!MetricsJsonPath.empty()) {
        std::ofstream Out(MetricsJsonPath);
        if (Out)
          Out << D.engine().telemetry().json("goldilocks-trace") << '\n';
        if (!Out) {
          std::fprintf(stderr, "error: failed to write %s\n",
                       MetricsJsonPath.c_str());
          std::exit(126);
        }
      }
      if (!RaceReportPath.empty()) {
        JsonWriter J;
        J.beginObject();
        J.kv("schema", "gold-race-report-v1");
        J.kv("source", "goldilocks-trace");
        J.kv("detector", "goldilocks");
        J.kv("race_count", static_cast<uint64_t>(R.Races.size()));
        J.key("races");
        J.beginArray();
        for (const RaceReport &Rep : R.Races)
          Rep.toJson(J);
        J.endArray();
        J.endObject();
        if (!J.writeFile(RaceReportPath)) {
          std::fprintf(stderr, "error: failed to write %s\n",
                       RaceReportPath.c_str());
          std::exit(126);
        }
      }
      if (!TraceOutPath.empty() && !Sink.writeFile(TraceOutPath)) {
        std::fprintf(stderr, "error: failed to write %s\n",
                     TraceOutPath.c_str());
        std::exit(126);
      }
      if (WantEvents) {
        auto Events = Sup.events();
        std::printf("supervision events (%zu recorded, %llu dropped):\n",
                    Events.size(),
                    (unsigned long long)Sup.ring().dropped());
        for (const SupervisionEvent &E : Events)
          std::printf("%s\n", E.str().c_str());
      }
    } else if (Name == "reference") {
      GoldilocksReference::Config C;
      C.Semantics = Semantics;
      GoldilocksReferenceDetector D(C);
      RacyVars = runDetector(D, T, false, WantHealth, false, nullptr).RacyVars;
    } else if (Name == "eraser") {
      EraserDetector D;
      RacyVars = runDetector(D, T, false, WantHealth, false, nullptr).RacyVars;
    } else if (Name == "vectorclock") {
      VectorClockDetector::Config C;
      C.Semantics = Semantics;
      VectorClockDetector D(C);
      RacyVars = runDetector(D, T, false, WantHealth, false, nullptr).RacyVars;
    } else {
      return false;
    }
    return true;
  };

  if (DetectorName == "all") {
    for (const char *N : {"goldilocks", "reference", "eraser", "vectorclock"})
      RunOne(N);
  } else if (!RunOne(DetectorName)) {
    return usage();
  }

  if (WantOracle) {
    RaceOracle O(T, Semantics);
    std::printf("%-12s %zu racy variable(s)\n", "oracle", O.racyVars().size());
  }
  return static_cast<int>(RacyVars > 125 ? 125 : RacyVars);
}
