#!/usr/bin/env python3
"""Validate the repo's measurement artifacts (stdlib only).

Understands every JSON document the binaries emit and checks real
invariants, not just well-formedness:

  gold-bench-v1        BENCH_*.json / perf-smoke artifacts (bench_* --json,
                       goldilocks-trace --stats-json)
  gold-metrics-v1      goldilocks-trace / goldilocks-serve --metrics-json
  gold-health-v1       goldilocks-serve --health-json (service + shards)
  gold-race-report-v1  goldilocks-trace --race-report
  gold-trace-v1        goldilocks-serve / net_chaos_client --trace-out and
                       merge_traces.py output (pipeline span traces); checks
                       the per-frame stage-sum invariant
                       wire + ring_wait + apply <= e2e
  gold-timeseries-v1   goldilocks-serve /metrics/history (time-series ring)
  Chrome trace events  goldilocks-trace --trace-out (Perfetto-loadable)

Usage: check_bench_schema.py FILE [FILE...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys

TELEMETRY_LEVELS = ("off", "counters", "full")


class Bad(Exception):
    pass


def need(doc, key, types, ctx):
    if key not in doc:
        raise Bad(f"{ctx}: missing required key '{key}'")
    val = doc[key]
    if not isinstance(val, types):
        raise Bad(f"{ctx}: '{key}' has type {type(val).__name__}, "
                  f"expected {types}")
    return val


def check_counter_map(obj, ctx):
    if not isinstance(obj, dict):
        raise Bad(f"{ctx}: expected an object")
    for name, val in obj.items():
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            raise Bad(f"{ctx}.{name}: non-numeric value {val!r}")
        if val < 0:
            raise Bad(f"{ctx}.{name}: negative counter {val}")


def check_stats_block(stats, ctx):
    check_counter_map(stats, ctx)
    # Counters the engine has emitted since PR 1; their absence means the
    # emitter and this checker have drifted.
    for key in ("accesses", "sync_events", "full_walks", "cells_walked"):
        if key not in stats:
            raise Bad(f"{ctx}: missing engine counter '{key}'")


def check_histogram(name, h, ctx):
    ctx = f"{ctx}.{name}"
    count = need(h, "count", int, ctx)
    total = need(h, "sum", int, ctx)
    hmax = need(h, "max", int, ctx)
    need(h, "mean", (int, float), ctx)
    buckets = need(h, "buckets", list, ctx)
    bucket_total = 0
    prev_hi = -1
    for i, b in enumerate(buckets):
        if (not isinstance(b, list) or len(b) != 3
                or not all(isinstance(x, int) for x in b)):
            raise Bad(f"{ctx}.buckets[{i}]: expected [lo, hi, count] ints, "
                      f"got {b!r}")
        lo, hi, n = b
        if lo > hi:
            raise Bad(f"{ctx}.buckets[{i}]: lo {lo} > hi {hi}")
        if lo <= prev_hi:
            raise Bad(f"{ctx}.buckets[{i}]: overlaps previous bucket")
        prev_hi = hi
        bucket_total += n
    if bucket_total != count:
        raise Bad(f"{ctx}: bucket counts sum to {bucket_total}, "
                  f"count says {count}")
    if count and total < hmax:
        raise Bad(f"{ctx}: sum {total} < max {hmax}")


def check_metrics_body(doc, ctx):
    level = need(doc, "level", str, ctx)
    if level not in TELEMETRY_LEVELS:
        raise Bad(f"{ctx}: bad level {level!r}")
    check_counter_map(need(doc, "counters", dict, ctx), f"{ctx}.counters")
    check_counter_map(need(doc, "gauges", dict, ctx), f"{ctx}.gauges")
    hists = need(doc, "histograms", dict, ctx)
    for name, h in hists.items():
        if not isinstance(h, dict):
            raise Bad(f"{ctx}.histograms.{name}: expected an object")
        check_histogram(name, h, f"{ctx}.histograms")
    if level != "full" and hists:
        raise Bad(f"{ctx}: histograms present at level {level!r}")


def check_metrics(doc, path):
    need(doc, "source", str, path)
    check_metrics_body(doc, path)


def check_service_run(r, ctx):
    """bench_service runs carry the service-soak headline numbers; check the
    invariants that hold on any machine at any load."""
    need(r, "scenario", str, ctx)
    for key in ("sessions_per_sec", "lines_per_sec"):
        if need(r, key, (int, float), ctx) < 0:
            raise Bad(f"{ctx}: negative '{key}'")
    shed = need(r, "shed_rate", (int, float), ctx)
    if not 0 <= shed <= 1:
        raise Bad(f"{ctx}: shed_rate {shed} outside [0, 1]")
    opened = need(r, "sessions_opened", int, ctx)
    if need(r, "sessions_shed", int, ctx) > opened:
        raise Bad(f"{ctx}: sessions_shed exceeds sessions_opened")
    if need(r, "verdict_loss_events", int, ctx) < 0:
        raise Bad(f"{ctx}: negative verdict_loss_events")
    p50 = need(r, "p50_ingest_latency_nanos", int, ctx)
    p99 = need(r, "p99_ingest_latency_nanos", int, ctx)
    lmax = need(r, "max_ingest_latency_nanos", int, ctx)
    if not 0 <= p50 <= p99 <= lmax:
        raise Bad(f"{ctx}: latency quantiles not ordered "
                  f"(p50 {p50}, p99 {p99}, max {lmax})")


def check_net_run(r, ctx):
    """bench_net runs carry the transport A/B headline numbers; check the
    invariants that hold on any machine at any load."""
    scenario = need(r, "scenario", str, ctx)
    transport = need(r, "transport", str, ctx)
    if transport not in ("tcp", "shm"):
        raise Bad(f"{ctx}: unknown transport {transport!r}")
    for key in ("conns_per_sec", "frames_per_sec", "wire_frames_per_sec"):
        if need(r, key, (int, float), ctx) < 0:
            raise Bad(f"{ctx}: negative '{key}'")
    for key in ("conns_accepted", "conns_rejected", "frames_in",
                "backpressure_replies", "resync_replies", "fallout_frames",
                "dup_frames", "replies_shed", "verdict_replies_dropped",
                "partial_frames_dropped", "drain_dropped_frames",
                "reconnects", "resumes", "races_delivered",
                "verdict_loss_events"):
        if need(r, key, int, ctx) < 0:
            raise Bad(f"{ctx}: negative '{key}'")
    p50 = need(r, "p50_frame_latency_nanos", int, ctx)
    p99 = need(r, "p99_frame_latency_nanos", int, ctx)
    lmax = need(r, "max_frame_latency_nanos", int, ctx)
    if not 0 <= p50 <= p99 <= lmax:
        raise Bad(f"{ctx}: frame latency quantiles not ordered "
                  f"(p50 {p50}, p99 {p99}, max {lmax})")
    # Client-stamped end-to-end latency (PR 10): emitted by every run, and
    # the quantiles must be ordered just like the server-side frame series.
    e2e_frames = need(r, "e2e_frames", int, ctx)
    if e2e_frames < 0:
        raise Bad(f"{ctx}: negative 'e2e_frames'")
    ep50 = need(r, "p50_e2e_latency_nanos", int, ctx)
    ep99 = need(r, "p99_e2e_latency_nanos", int, ctx)
    emax = need(r, "max_e2e_latency_nanos", int, ctx)
    if not 0 <= ep50 <= ep99 <= emax:
        raise Bad(f"{ctx}: e2e latency quantiles not ordered "
                  f"(p50 {ep50}, p99 {ep99}, max {emax})")
    # The e2e series covers a frame's whole round trip, so its p99 can never
    # undercut the server-side ingest-to-verdict p99 on the same run... but
    # the two histograms sample different populations (client clock vs ring
    # clock), so only the trivially safe bound is asserted: a run that
    # recorded e2e samples must have accepted frames.
    if e2e_frames and need(r, "frames_in", int, ctx) == 0:
        raise Bad(f"{ctx}: e2e_frames {e2e_frames} without any frames_in")
    compared = need(r, "clients_compared", int, ctx)
    diverged = need(r, "verdict_divergence", int, ctx)
    if diverged > compared:
        raise Bad(f"{ctx}: verdict_divergence {diverged} exceeds "
                  f"clients_compared {compared}")
    if transport == "shm":
        for key in ("slots_in", "producers_reaped", "producers_wedged",
                    "rings_recycled", "decode_errors", "seq_violations",
                    "verdicts_truncated", "doorbell_wakeups"):
            if need(r, key, int, ctx) < 0:
                raise Bad(f"{ctx}: negative '{key}'")
        # Every frame occupies at least its header slot.
        if r["slots_in"] < r["frames_in"]:
            raise Bad(f"{ctx}: slots_in {r['slots_in']} below frames_in "
                      f"{r['frames_in']}")
    if scenario.endswith("steady"):
        # The clean path must be provably exact on either transport: every
        # client compared against the oracle, nothing dropped, nothing
        # diverged — and nothing resynced: a steady-state resync storm is
        # the pathology PR 9 fixed, so its counter is pinned to zero here.
        for key in ("verdict_divergence", "clients_uncompared",
                    "drain_dropped_frames", "verdict_loss_events",
                    "resync_replies"):
            if need(r, key, int, ctx) != 0:
                raise Bad(f"{ctx}: steady scenario has nonzero '{key}'")
        if transport == "shm":
            for key in ("producers_reaped", "producers_wedged",
                        "decode_errors", "seq_violations"):
                if r[key] != 0:
                    raise Bad(f"{ctx}: steady scenario has nonzero '{key}'")


def check_net_ab(doc, runs, path):
    """The TCP-vs-SHM A/B summary: the recorded speedup must be the ratio
    of the recorded runs, and when the bench ran with --assert-shm-ab the
    acceptance gate (>= 3x frames/s, p99 no worse) must hold in the
    artifact, not just in the exit status."""
    by_scenario = {r.get("scenario"): r for r in runs}
    steady = by_scenario.get("steady")
    shm_steady = by_scenario.get("shm-steady")
    if "shm_speedup_vs_tcp" not in doc:
        if shm_steady is not None:
            raise Bad(f"{path}: shm-steady run present but "
                      f"'shm_speedup_vs_tcp' missing")
        return
    speedup = need(doc, "shm_speedup_vs_tcp", (int, float), path)
    shm_p99 = need(doc, "shm_steady_p99_nanos", int, path)
    tcp_p99 = need(doc, "tcp_steady_p99_nanos", int, path)
    asserted = need(doc, "asserted_speedup", bool, path)
    if steady is None or shm_steady is None:
        raise Bad(f"{path}: A/B summary present without both steady runs")
    tcp_fps = steady["frames_per_sec"]
    expect = shm_steady["frames_per_sec"] / tcp_fps if tcp_fps else 0.0
    if abs(speedup - expect) > max(1e-3 * expect, 1e-9):
        raise Bad(f"{path}: shm_speedup_vs_tcp {speedup} inconsistent with "
                  f"run ratio {expect}")
    if shm_p99 != shm_steady["p99_frame_latency_nanos"]:
        raise Bad(f"{path}: shm_steady_p99_nanos disagrees with the "
                  f"shm-steady run")
    if tcp_p99 != steady["p99_frame_latency_nanos"]:
        raise Bad(f"{path}: tcp_steady_p99_nanos disagrees with the "
                  f"steady run")
    if asserted:
        if speedup < 3.0:
            raise Bad(f"{path}: asserted speedup {speedup} below the 3x "
                      f"acceptance gate")
        if shm_p99 > tcp_p99:
            raise Bad(f"{path}: asserted shm p99 {shm_p99} worse than TCP "
                      f"p99 {tcp_p99}")


def check_traced_ab(doc, path):
    """bench_observability's traced-vs-untraced transport ablation (PR 10):
    each rep pairs an untraced and a traced run of the same transport, the
    recorded ratio must be the ratio of the recorded runs, and the per-
    transport medians must match the rep population.  When the bench ran
    with --assert-traced-ab the acceptance gate (median ratio >= 0.97,
    i.e. tracing-on within noise of tracing-off) must hold in the artifact,
    not just in the exit status."""
    reps = need(doc, "traced_transport_ab", list, path)
    if not reps:
        raise Bad(f"{path}: empty 'traced_transport_ab' array")
    ratios = {"tcp": [], "shm": []}
    for i, r in enumerate(reps):
        ctx = f"{path}.traced_transport_ab[{i}]"
        transport = need(r, "transport", str, ctx)
        if transport not in ratios:
            raise Bad(f"{ctx}: unknown transport {transport!r}")
        need(r, "rep", int, ctx)
        off = need(r, "untraced_frames_per_sec", (int, float), ctx)
        on = need(r, "traced_frames_per_sec", (int, float), ctx)
        if off <= 0 or on <= 0:
            raise Bad(f"{ctx}: non-positive frames/s (off {off}, on {on})")
        ratio = need(r, "traced_over_untraced_ratio", (int, float), ctx)
        expect = on / off
        if abs(ratio - expect) > max(1e-3 * expect, 1e-9):
            raise Bad(f"{ctx}: ratio {ratio} inconsistent with "
                      f"{on}/{off} = {expect}")
        ratios[transport].append(ratio)
    for transport, key in (("tcp", "traced_ab_tcp_median_ratio"),
                           ("shm", "traced_ab_shm_median_ratio")):
        if not ratios[transport]:
            raise Bad(f"{path}: no '{transport}' reps in traced_transport_ab")
        med = need(doc, key, (int, float), path)
        vals = sorted(ratios[transport])
        mid = len(vals) // 2
        expect = (vals[mid] if len(vals) % 2
                  else (vals[mid - 1] + vals[mid]) / 2)
        if abs(med - expect) > max(1e-3 * expect, 1e-9):
            raise Bad(f"{path}: {key} {med} inconsistent with rep "
                      f"median {expect}")
        if need(doc, "asserted_traced_ab", bool, path) and med < 0.97:
            raise Bad(f"{path}: asserted {transport} median ratio {med} "
                      f"below the 0.97 within-noise gate")


def check_tiers(doc, path):
    """bench_tiers: the adaptive-precision pipeline artifact. The escalation
    rows must show tiered mode at the same verdicts with no more pair checks
    than precise; the sampling rows must show precision/recall that are
    probabilities, with full rate degenerating to the precise verdicts."""
    escalation = need(doc, "escalation", list, path)
    if not escalation:
        raise Bad(f"{path}: empty 'escalation' array")
    for i, r in enumerate(escalation):
        ctx = f"{path}.escalation[{i}]"
        need(r, "workload", str, ctx)
        precise = need(r, "precise_pair_checks", int, ctx)
        tiered = need(r, "tiered_pair_checks", int, ctx)
        if tiered > precise:
            raise Bad(f"{ctx}: tiered pair checks {tiered} exceed "
                      f"precise {precise}")
        reduction = need(r, "reduction", (int, float), ctx)
        expect = precise / (tiered if tiered else 1)
        if abs(reduction - expect) > max(1e-6 * expect, 1e-9):
            raise Bad(f"{ctx}: reduction {reduction} inconsistent with "
                      f"{precise}/{tiered}")
        if need(r, "precise_races", int, ctx) != need(r, "tiered_races", int,
                                                      ctx):
            raise Bad(f"{ctx}: tiered verdicts diverge from precise")
        check_stats_block(need(r, "tiered_stats", dict, ctx),
                          f"{ctx}.tiered_stats")
    sampling = need(doc, "sampling", list, path)
    if not sampling:
        raise Bad(f"{path}: empty 'sampling' array")
    for i, r in enumerate(sampling):
        ctx = f"{path}.sampling[{i}]"
        rate = need(r, "rate_ppm", int, ctx)
        if not 0 <= rate <= 1000000:
            raise Bad(f"{ctx}: rate_ppm {rate} outside [0, 1000000]")
        tp = need(r, "true_positives", int, ctx)
        fp = need(r, "false_positives", int, ctx)
        fn = need(r, "false_negatives", int, ctx)
        if min(tp, fp, fn) < 0:
            raise Bad(f"{ctx}: negative confusion counts")
        for key, num, den in (("precision", tp, tp + fp),
                              ("recall", tp, tp + fn)):
            val = need(r, key, (int, float), ctx)
            if not 0 <= val <= 1:
                raise Bad(f"{ctx}: {key} {val} outside [0, 1]")
            expect = num / den if den else 1.0
            if abs(val - expect) > 1e-6:
                raise Bad(f"{ctx}: {key} {val} inconsistent with counts")
        if rate == 1000000:
            if fn != 0:
                raise Bad(f"{ctx}: full-rate run missed {fn} races")
            if need(r, "sampled_skips", int, ctx) != 0:
                raise Bad(f"{ctx}: full-rate run skipped accesses")


def check_bench(doc, path):
    need(doc, "bench", str, path)
    need(doc, "git_rev", str, path)
    need(doc, "utc", str, path)
    if doc["bench"] == "bench_tiers":
        check_tiers(doc, path)
    if "traced_transport_ab" in doc:
        check_traced_ab(doc, path)
    runs = doc.get("runs")
    if runs is not None:
        if not isinstance(runs, list) or not runs:
            raise Bad(f"{path}: 'runs' must be a non-empty array")
        for i, r in enumerate(runs):
            ctx = f"{path}.runs[{i}]"
            if not isinstance(r, dict):
                raise Bad(f"{ctx}: expected an object")
            if "seconds" in r and (not isinstance(r["seconds"], (int, float))
                                   or r["seconds"] < 0):
                raise Bad(f"{ctx}: bad 'seconds' {r['seconds']!r}")
            if "stats" in r:
                check_stats_block(r["stats"], f"{ctx}.stats")
            if "telemetry" in r:
                check_metrics_body(r["telemetry"], f"{ctx}.telemetry")
            if doc["bench"] == "bench_service":
                check_service_run(r, ctx)
            if doc["bench"] == "bench_net":
                check_net_run(r, ctx)
        if doc["bench"] == "bench_net":
            check_net_ab(doc, runs, path)
    if "stats" in doc:
        check_stats_block(doc["stats"], f"{path}.stats")
    if "health" in doc:
        check_counter_map(
            {k: v for k, v in doc["health"].items()
             if not isinstance(v, bool)}, f"{path}.health")


def check_service_health(doc, path):
    """goldilocks-serve --health-json: the service-wide ladder and loss
    accounting plus one engine-health block per shard."""
    need(doc, "source", str, path)
    shards = need(doc, "shards", int, path)
    check_counter_map(
        {k: v for k, v in doc.items()
         if not isinstance(v, (bool, str, list, dict))}, path)
    shard_health = need(doc, "shard_health", list, path)
    if len(shard_health) != shards:
        raise Bad(f"{path}: shards says {shards} but shard_health has "
                  f"{len(shard_health)} entries")
    for i, sh in enumerate(shard_health):
        ctx = f"{path}.shard_health[{i}]"
        if not isinstance(sh, dict):
            raise Bad(f"{ctx}: expected an object")
        check_counter_map(
            {k: v for k, v in sh.items() if not isinstance(v, bool)}, ctx)
        for key in ("cells", "degradation_level"):
            need(sh, key, int, ctx)
    # Loss is accounted, never silent: the total must cover its parts.
    loss = need(doc, "verdict_loss_events", int, path)
    parts = (doc.get("lost_sessions", 0) + doc.get("verdicts_dropped_dead", 0)
             + doc.get("dropped_pending_actions", 0))
    if loss < parts:
        raise Bad(f"{path}: verdict_loss_events {loss} below the sum of its "
                  f"components {parts}")


def check_race_report(doc, path):
    need(doc, "source", str, path)
    count = need(doc, "race_count", int, path)
    races = need(doc, "races", list, path)
    if len(races) != count:
        raise Bad(f"{path}: race_count {count} != len(races) {len(races)}")
    for i, r in enumerate(races):
        ctx = f"{path}.races[{i}]"
        need(r, "var", str, ctx)
        for side in ("access", "prior"):
            a = need(r, side, dict, ctx)
            need(a, "thread", int, f"{ctx}.{side}")
            need(a, "kind", str, f"{ctx}.{side}")
        prov = need(r, "provenance", dict, ctx)
        if need(prov, "captured", bool, f"{ctx}.provenance"):
            steps = need(prov, "steps", list, f"{ctx}.provenance")
            prev = 0
            for j, s in enumerate(steps):
                seq = need(s, "seq", int, f"{ctx}.provenance.steps[{j}]")
                if seq <= prev:
                    raise Bad(f"{ctx}.provenance.steps[{j}]: seq {seq} not "
                              f"strictly increasing")
                prev = seq


def check_pipe_trace(doc, path):
    """gold-trace-v1: pipeline span traces from TraceEventSink::json (one
    process, top-level 'pid') or merge_traces.py ('pids' + 'merged_from').

    Beyond well-formedness this checks the invariant the whole span model is
    built around: for every sampled frame the three pipeline stages tile the
    end-to-end span exactly, so wire + ring_wait + apply <= e2e (with a tiny
    float tolerance — ts/dur are microseconds with ns precision).  Spans are
    grouped by (pid, tid, client, seq, shard): a frame routed to multiple
    shards fans out into one chain per shard copy, and args.shard is what
    keeps those copies from being mixed into one bogus group."""
    if need(doc, "displayTimeUnit", str, path) != "ns":
        raise Bad(f"{path}: displayTimeUnit is not 'ns'")
    if need(doc, "ts_origin_nanos", int, path) < 0:
        raise Bad(f"{path}: negative ts_origin_nanos")
    merged = "pids" in doc
    if merged:
        pids = need(doc, "pids", list, path)
        if not all(isinstance(p, int) for p in pids):
            raise Bad(f"{path}: non-integer entry in 'pids'")
        if need(doc, "merged_from", int, path) != len(pids):
            raise Bad(f"{path}: merged_from disagrees with len(pids)")
        known_pids = set(pids)
    else:
        known_pids = {need(doc, "pid", int, path)}
    events = need(doc, "traceEvents", list, path)
    stages = {}  # (pid, tid, client, seq, shard) -> {stage: dur_us}
    for i, e in enumerate(events):
        ctx = f"{path}.traceEvents[{i}]"
        name = need(e, "name", str, ctx)
        ph = need(e, "ph", str, ctx)
        if ph not in ("X", "i"):
            raise Bad(f"{ctx}: unexpected phase {ph!r}")
        if need(e, "ts", (int, float), ctx) < 0:
            raise Bad(f"{ctx}: negative ts")
        dur = 0.0
        if ph == "X":
            dur = need(e, "dur", (int, float), ctx)
            if dur < 0:
                raise Bad(f"{ctx}: negative dur")
        pid = need(e, "pid", int, ctx)
        if pid not in known_pids:
            raise Bad(f"{ctx}: pid {pid} not declared at top level")
        tid = need(e, "tid", int, ctx)
        if e.get("cat") != "pipe" or ph != "X":
            continue
        args = need(e, "args", dict, ctx)
        key = (pid, tid, need(args, "client", int, f"{ctx}.args"),
               need(args, "seq", int, f"{ctx}.args"), args.get("shard", -1))
        chain = stages.setdefault(key, {})
        if name in ("wire", "ring_wait", "apply", "e2e"):
            # A frame's stage chain is emitted exactly once per shard copy;
            # a second copy under the same key is an attribution bug.  Other
            # pipe spans (verdict, client_e2e) legitimately repeat: one
            # frame can deliver many race verdicts.
            if name in chain:
                raise Bad(f"{ctx}: duplicate '{name}' span for frame {key}")
            chain[name] = dur
    chains = 0
    for key, chain in stages.items():
        if "e2e" not in chain:
            continue  # client_e2e / verdict-only groups carry no stage sum
        chains += 1
        parts = sum(chain.get(s, 0.0) for s in ("wire", "ring_wait", "apply"))
        # 1ns per stage of float slack: ts/dur went through a /1000.0.
        if parts > chain["e2e"] + 0.004:
            raise Bad(f"{path}: frame {key}: stage sum {parts}us exceeds "
                      f"e2e {chain['e2e']}us")
    return chains


def check_timeseries(doc, path):
    """gold-timeseries-v1: the /metrics/history ring. Samples must be in
    time order with positive observation windows, rates non-negative, and
    every histogram's quantiles ordered."""
    need(doc, "source", str, path)
    need(doc, "interval_hint_ms", int, path)
    capacity = need(doc, "capacity", int, path)
    if capacity <= 0:
        raise Bad(f"{path}: non-positive capacity")
    if need(doc, "forgotten", int, path) < 0:
        raise Bad(f"{path}: negative forgotten")
    samples = need(doc, "samples", list, path)
    if len(samples) > capacity:
        raise Bad(f"{path}: {len(samples)} samples exceed capacity "
                  f"{capacity}")
    prev_t = -1
    for i, s in enumerate(samples):
        ctx = f"{path}.samples[{i}]"
        t = need(s, "t_unix_ms", int, ctx)
        if t < prev_t:
            raise Bad(f"{ctx}: t_unix_ms went backwards")
        prev_t = t
        if need(s, "dt_secs", (int, float), ctx) <= 0:
            raise Bad(f"{ctx}: non-positive dt_secs")
        check_counter_map(need(s, "rates", dict, ctx), f"{ctx}.rates")
        for name, g in need(s, "gauges", dict, ctx).items():
            if not isinstance(g, int) or isinstance(g, bool):
                raise Bad(f"{ctx}.gauges.{name}: bad gauge {g!r}")
        for name, h in need(s, "histograms", dict, ctx).items():
            hctx = f"{ctx}.histograms.{name}"
            if not isinstance(h, dict):
                raise Bad(f"{hctx}: expected an object")
            if need(h, "count", int, hctx) < 0:
                raise Bad(f"{hctx}: negative count")
            p50 = need(h, "p50", int, hctx)
            p99 = need(h, "p99", int, hctx)
            if not 0 <= p50 <= p99:
                raise Bad(f"{hctx}: p50 {p50} > p99 {p99}")


def check_chrome_trace(doc, path):
    events = need(doc, "traceEvents", list, path)
    for i, e in enumerate(events):
        ctx = f"{path}.traceEvents[{i}]"
        ph = need(e, "ph", str, ctx)
        need(e, "name", str, ctx)
        ts = need(e, "ts", (int, float), ctx)
        if ts < 0:
            raise Bad(f"{ctx}: negative ts")
        if ph == "X":
            if need(e, "dur", (int, float), ctx) < 0:
                raise Bad(f"{ctx}: negative dur")
        elif ph != "i":
            raise Bad(f"{ctx}: unexpected phase {ph!r}")


def check_file(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise Bad(f"{path}: top level is not an object")
    schema = doc.get("schema")
    if schema == "gold-bench-v1":
        check_bench(doc, path)
    elif schema == "gold-metrics-v1":
        check_metrics(doc, path)
    elif schema == "gold-health-v1":
        check_service_health(doc, path)
    elif schema == "gold-race-report-v1":
        check_race_report(doc, path)
    elif schema == "gold-trace-v1":
        chains = check_pipe_trace(doc, path)
        schema = f"gold-trace-v1, {chains} stage chains"
    elif schema == "gold-timeseries-v1":
        check_timeseries(doc, path)
    elif schema is None and "traceEvents" in doc:
        check_chrome_trace(doc, path)
        schema = "chrome-trace"
    else:
        raise Bad(f"{path}: unknown schema {schema!r}")
    return schema


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 1
    failed = False
    for path in argv[1:]:
        try:
            schema = check_file(path)
            print(f"{path}: ok ({schema})")
        except (Bad, OSError, json.JSONDecodeError) as e:
            print(f"{path}: FAIL: {e}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
