#!/usr/bin/env python3
"""Merge per-process gold-trace-v1 Chrome traces into one timeline.

Each TraceEventSink writes its events with "ts" rebased to the process's
own earliest event and records the absolute monotonic base it subtracted
as "ts_origin_nanos".  Processes on the same host share the monotonic
clock (and the server corrects client origin stamps onto its own clock via
the open/claim handshake), so restoring every event to absolute nanos
(ts_origin_nanos + ts*1000) and rebasing the union against the global
minimum yields one consistent cross-process timeline: server pipe spans
and client client_e2e spans for the same (client, seq) line up.

Events keep their original pid/tid; the merged document carries the full
pid list so a validator can check no process was lost.

Usage:
    merge_traces.py -o merged.json server-trace.json client-trace.json ...

Stdlib only; the C++ side never parses JSON.
"""

import argparse
import json
import sys


def load_trace(path):
    with open(path, "r") as f:
        doc = json.load(f)
    if doc.get("schema") != "gold-trace-v1":
        raise ValueError(f"{path}: not a gold-trace-v1 document "
                         f"(schema={doc.get('schema')!r})")
    if not isinstance(doc.get("traceEvents"), list):
        raise ValueError(f"{path}: missing traceEvents array")
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", required=True,
                    help="merged gold-trace-v1 output path")
    ap.add_argument("traces", nargs="+", help="gold-trace-v1 input files")
    args = ap.parse_args()

    docs = []
    for path in args.traces:
        try:
            docs.append((path, load_trace(path)))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"merge_traces: {e}", file=sys.stderr)
            return 1

    # Restore absolute nanos per event, then rebase to the global minimum.
    absolute = []  # (abs_ns, event)
    pids = set()
    for path, doc in docs:
        origin = int(doc.get("ts_origin_nanos", 0))
        pids.add(int(doc.get("pid", 0)))
        for ev in doc["traceEvents"]:
            abs_ns = origin + int(round(float(ev.get("ts", 0)) * 1000.0))
            absolute.append((abs_ns, ev))
    base = min((ns for ns, _ in absolute), default=0)

    merged_events = []
    for abs_ns, ev in sorted(absolute, key=lambda p: p[0]):
        out = dict(ev)
        out["ts"] = (abs_ns - base) / 1000.0
        merged_events.append(out)

    merged = {
        "schema": "gold-trace-v1",
        "displayTimeUnit": "ns",
        "ts_origin_nanos": base,
        "pids": sorted(pids),
        "merged_from": len(docs),
        "traceEvents": merged_events,
    }
    with open(args.output, "w") as f:
        json.dump(merged, f)
        f.write("\n")
    print(f"merge_traces: {len(merged_events)} events from {len(docs)} "
          f"process(es) -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
