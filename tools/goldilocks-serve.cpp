//===- tools/goldilocks-serve.cpp - Always-on ingestion front-end ---------===//
///
/// Front-end for the sharded detection service (src/service/). By default
/// it speaks a line protocol over stdin/stdout so CI and tests can drive a
/// long-running multi-client service deterministically, without sockets.
/// With --listen (and optionally --scrape-port) the same protocol is served
/// over TCP by the poll()-based NetServer — sequence-numbered lines,
/// wire-level backpressure replies, heartbeats, and a live HTTP
/// /healthz + /metrics scrape endpoint; see DESIGN.md §16 for the wire
/// protocol. With --shm <path> the same sessions are additionally served
/// to co-located producers over the shared-memory ring transport
/// (DESIGN.md §17) — binary frames, crash-only producer reaping, drained
/// on SIGTERM exactly like the socket path. GoldClient (src/client/) is
/// the library counterpart for both transports.
///
/// Protocol (one command per line):
///   open <client-id> [priority]   admit a session (ids are decimal)
///   line <client-id> <trace-line> stream one TraceIO line into the session
///   close <client-id>             orderly close; prints delivered verdicts
///   verdicts <client-id>          print (and drain) verdicts delivered so far
///   health                        print a one-line service health snapshot
///   pump                          drain every shard ring (inline mode)
///   quit                          leave the loop and shut down
///
/// Replies: "ok <cmd> ...", "err <cmd> ...", "race <client-id> <report>",
/// "health <snapshot>". Accepted `line` commands are silent so a 10^6-line
/// stream does not produce 10^6 acks.
///
/// --soak K replaces the protocol loop with a deterministic multi-client
/// soak: K clients each stream a seeded random trace, and every surviving
/// client's verdicts are checked against the happens-before oracle for its
/// own trace. Combined with --failpoint this is the chaos smoke CI runs.
///
/// SIGINT/SIGTERM trigger a crash-only quiesce: the loop stops where it is,
/// the service drains and shuts down, and the final health line plus any
/// --metrics-json/--health-json artifacts are still emitted.
///
/// Exit code: 0 on clean (or interrupted-but-clean) shutdown, 1 when a soak
/// verdict diverged from the oracle, 126 on usage errors.
///
//===----------------------------------------------------------------------===//

#include "event/RandomTrace.h"
#include "event/TraceIO.h"
#include "hb/HbOracle.h"
#include "service/Service.h"
#include "service/Snapshots.h"
#include "service/net/NetServer.h"
#include "service/shm/ShmServer.h"
#include "support/Failpoints.h"
#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#if !defined(_WIN32)
#include <signal.h>
#endif

using namespace gold;

namespace {

//===----------------------------------------------------------------------===//
// Signals: crash-only quiesce, final artifacts still emitted.
//===----------------------------------------------------------------------===//

std::atomic<bool> Interrupted{false};

void onSignal(int) { Interrupted.store(true, std::memory_order_relaxed); }

/// Install WITHOUT SA_RESTART so a blocking stdin read returns EINTR and
/// the protocol loop observes the flag instead of sitting in read() forever
/// — that is what lets `kill -TERM` of a backgrounded serve produce a clean
/// exit with the final health/metrics dump.
void installSignalHandlers() {
#if !defined(_WIN32)
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0;
  sigaction(SIGINT, &SA, nullptr);
  sigaction(SIGTERM, &SA, nullptr);
#else
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
#endif
}

bool interrupted() { return Interrupted.load(std::memory_order_relaxed); }

//===----------------------------------------------------------------------===//
// Flag table (same single-source-of-truth pattern as goldilocks-trace).
//===----------------------------------------------------------------------===//

enum class Opt {
  Shards,
  RingCapacity,
  MaxQueuedBytes,
  MaxSessions,
  ErrorBudget,
  IdleTimeoutMs,
  JournalCap,
  NoReplay,
  Threads,
  Tier,
  SamplingPpm,
  SamplingBudget,
  Telemetry,
  MetricsJson,
  HealthJson,
  MetricsIntervalMs,
  HistoryCapacity,
  TracePpm,
  TraceSeed,
  TraceOut,
  Listen,
  ScrapePort,
  ShmPath,
  ShmRings,
  ShmWedgeMs,
  Soak,
  SoakSteps,
  SoakThreads,
  Seed,
  DurationMs,
  FailpointArg,
  Help,
};

struct OptSpec {
  Opt Id;
  const char *Flag;
  const char *Arg;
  const char *Help;
};

constexpr OptSpec Options[] = {
    {Opt::Shards, "--shards", "<n>", "engine shards (default 4, max 64)"},
    {Opt::RingCapacity, "--ring-capacity", "<n>",
     "slots per shard ingestion ring (default 1024)"},
    {Opt::MaxQueuedBytes, "--max-queued-bytes", "<n>",
     "global queued-byte budget enforced by backpressure (default 8MiB)"},
    {Opt::MaxSessions, "--max-sessions", "<n>",
     "namespace slots ever admitted before recycling (default 512)"},
    {Opt::ErrorBudget, "--error-budget", "<n>",
     "malformed lines tolerated per session (default 10)"},
    {Opt::IdleTimeoutMs, "--idle-timeout-ms", "<n>",
     "reap sessions idle longer than this (0 disables)"},
    {Opt::JournalCap, "--journal-cap", "<n>",
     "journaled actions per session before replay is forfeited"},
    {Opt::NoReplay, "--no-replay", nullptr,
     "discard state on reincarnation instead of replaying journals "
     "(the loss is counted in health, never silent)"},
    {Opt::Threads, "--threads", nullptr,
     "run real per-shard consumer threads + watchdog (default: inline "
     "pumping, fully deterministic)"},
    {Opt::Tier, "--tier", "precise|tiered|sampling",
     "engine precision tier for every shard (default precise); tier "
     "counters surface in health and metrics JSON"},
    {Opt::SamplingPpm, "--sampling-ppm", "<0..1000000>",
     "sampling tier: parts-per-million of past-budget accesses processed"},
    {Opt::SamplingBudget, "--sampling-budget", "<n>",
     "sampling tier: per-variable leading accesses always processed"},
    {Opt::Telemetry, "--telemetry", "off|counters|full",
     "service telemetry level; 'full' adds the ingest-latency histogram"},
    {Opt::MetricsJson, "--metrics-json", "<path>",
     "write a gold-metrics-v1 snapshot of the service telemetry at exit"},
    {Opt::HealthJson, "--health-json", "<path>",
     "write the final service health snapshot as JSON at exit"},
    {Opt::MetricsIntervalMs, "--metrics-interval-ms", "<n>",
     "additionally rewrite --metrics-json/--health-json (and print a "
     "health line) every n ms while running, not just at exit; also "
     "feeds the /metrics/history time-series ring"},
    {Opt::HistoryCapacity, "--history-capacity", "<n>",
     "delta samples retained by the /metrics/history ring (default 512)"},
    {Opt::TracePpm, "--trace-ppm", "<0..1000000>",
     "enable end-to-end pipeline tracing: this ppm sample of frames gets "
     "per-stage pipe.* histogram attribution plus Chrome spans (see "
     "DESIGN.md §18)"},
    {Opt::TraceSeed, "--trace-seed", "<n>",
     "sampling seed for span selection (default 1; give clients the same "
     "seed/ppm so client and server sample identical frames)"},
    {Opt::TraceOut, "--trace-out", "<path>",
     "write the sampled spans as a gold-trace-v1 (Chrome trace) file at "
     "exit (implies --trace-ppm 10000 unless given)"},
    {Opt::Listen, "--listen", "<port>",
     "socket mode: accept line-protocol clients on this TCP port "
     "(0 picks an ephemeral port; a 'listening port=...' line is printed)"},
    {Opt::ScrapePort, "--scrape-port", "<port>",
     "serve HTTP GET /healthz and /metrics on this port (implies socket "
     "mode; 0 picks an ephemeral port)"},
    {Opt::ShmPath, "--shm", "<path>",
     "serve the shared-memory ring transport at this segment path "
     "(tmpfs recommended; combinable with --listen — same sessions, "
     "same health; see DESIGN.md §17)"},
    {Opt::ShmRings, "--shm-rings", "<n>",
     "rings in the segment = concurrent co-located producers (default 16)"},
    {Opt::ShmWedgeMs, "--shm-wedge-ms", "<n>",
     "reap a live producer whose heartbeat is stale this long "
     "(default 5000; 0 disables wedge reaping, pid-death reaping stays)"},
    {Opt::Soak, "--soak", "<k>",
     "skip the protocol: run k concurrent seeded clients and check every "
     "surviving client's verdicts against the happens-before oracle"},
    {Opt::SoakSteps, "--soak-steps", "<n>",
     "random-trace steps per thread per soak client (default 40)"},
    {Opt::SoakThreads, "--soak-threads", "<n>",
     "threads per soak client trace (default 4)"},
    {Opt::Seed, "--seed", "<n>",
     "base seed for soak traces and failpoint decisions (default 1)"},
    {Opt::DurationMs, "--duration-ms", "<n>",
     "stop feeding soak clients after this wall time (oracle comparison "
     "is skipped for clients cut short)"},
    {Opt::FailpointArg, "--failpoint", "<site>=<ppm>",
     "arm a failpoint at the given parts-per-million rate (repeatable); "
     "sites: service-ingest-stall, service-client-hang, service-shard-wedge,"
     " ..."},
    {Opt::Help, "--help", nullptr, "print this help"},
};

const OptSpec *findOpt(const std::string &Flag) {
  for (const OptSpec &S : Options)
    if (Flag == S.Flag)
      return &S;
  return nullptr;
}

int usage(FILE *To = stderr) {
  std::fprintf(To, "usage: goldilocks-serve [options]\n");
  for (const OptSpec &S : Options) {
    char Left[64];
    std::snprintf(Left, sizeof(Left), "%s%s%s", S.Flag, S.Arg ? " " : "",
                  S.Arg ? S.Arg : "");
    std::fprintf(To, "  %-28s %s\n", Left, S.Help);
  }
  return 126;
}

bool parseFailpointArg(const char *V, FailpointConfig &FC) {
  const char *Eq = std::strchr(V, '=');
  if (!Eq || Eq == V)
    return false;
  std::string Name(V, static_cast<size_t>(Eq - V));
  char *End = nullptr;
  unsigned long Ppm = std::strtoul(Eq + 1, &End, 10);
  if (End == Eq + 1 || *End || Ppm > 1000000)
    return false;
  for (unsigned I = 0; I != NumFailpoints; ++I) {
    Failpoint F = static_cast<Failpoint>(I);
    if (Name == failpointName(F)) {
      FC.rate(F, static_cast<uint32_t>(Ppm));
      return true;
    }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Feeding with the backpressure contract.
//===----------------------------------------------------------------------===//

/// Presents \p Line until it is accepted or terminally refused, honoring the
/// retry-the-same-line backpressure contract. In inline mode the caller IS
/// the consumer, so instead of sleeping we pump the shards (and poll, which
/// un-wedges a shard whose ring is closed for reincarnation). In threaded
/// mode we sleep the jittered retry-after the service handed back.
FeedResult feedWithRetry(DetectionService &Svc, Session &S,
                         const std::string &Line, bool Threaded) {
  for (;;) {
    FeedResult R = S.feedLine(Line);
    if (R.St != FeedResult::Status::Backpressure || interrupted())
      return R;
    if (Threaded) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(
          R.RetryAfterNanos ? R.RetryAfterNanos : 1000));
    } else {
      Svc.pumpAll();
      Svc.poll();
    }
  }
}

size_t printVerdicts(Session &S, uint64_t Client) {
  std::vector<RaceReport> Races = S.takeVerdicts();
  for (const RaceReport &R : Races)
    std::printf("race %llu %s\n", (unsigned long long)Client, R.str().c_str());
  return Races.size();
}

//===----------------------------------------------------------------------===//
// Protocol mode
//===----------------------------------------------------------------------===//

void runProtocol(DetectionService &Svc, bool Threaded) {
  std::unordered_map<uint64_t, Session *> Clients;
  std::string L;
  while (!interrupted() && std::getline(std::cin, L)) {
    std::istringstream In(L);
    std::string Cmd;
    In >> Cmd;
    if (Cmd.empty())
      continue;
    if (Cmd == "quit")
      break;
    if (Cmd == "health") {
      std::printf("health %s\n", Svc.health().str().c_str());
      std::fflush(stdout);
      continue;
    }
    if (Cmd == "pump") {
      if (!Threaded) {
        Svc.drain();
        Svc.poll();
      }
      std::printf("ok pump\n");
      std::fflush(stdout);
      continue;
    }
    uint64_t Id = 0;
    if (!(In >> Id)) {
      std::printf("err proto missing client id: %s\n", Cmd.c_str());
      std::fflush(stdout);
      continue;
    }
    if (Cmd == "open") {
      unsigned Priority = 1;
      In >> Priority;
      DetectionService::OpenResult R = Svc.open(Id, Priority);
      if (!R.S) {
        std::printf("err open %llu %s retry-after-ns=%llu\n",
                    (unsigned long long)Id, R.Error.c_str(),
                    (unsigned long long)R.RetryAfterNanos);
      } else {
        Clients[Id] = R.S;
        std::printf("ok open %llu\n", (unsigned long long)Id);
      }
      std::fflush(stdout);
      continue;
    }
    auto It = Clients.find(Id);
    if (It == Clients.end()) {
      std::printf("err %s %llu unknown client\n", Cmd.c_str(),
                  (unsigned long long)Id);
      std::fflush(stdout);
      continue;
    }
    Session &S = *It->second;
    if (Cmd == "line") {
      std::string Rest;
      std::getline(In, Rest);
      if (!Rest.empty() && Rest[0] == ' ')
        Rest.erase(0, 1);
      FeedResult R = feedWithRetry(Svc, S, Rest, Threaded);
      switch (R.St) {
      case FeedResult::Status::Accepted:
        break; // silent: streams are long
      case FeedResult::Status::Rejected:
        std::printf("err line %llu %s\n", (unsigned long long)Id,
                    R.Error.c_str());
        std::fflush(stdout);
        break;
      case FeedResult::Status::Backpressure:
        std::printf("err line %llu backpressure retry-after-ns=%llu\n",
                    (unsigned long long)Id,
                    (unsigned long long)R.RetryAfterNanos);
        std::fflush(stdout);
        break;
      case FeedResult::Status::Closed:
        std::printf("err line %llu closed: %s\n", (unsigned long long)Id,
                    R.Error.c_str());
        std::fflush(stdout);
        break;
      }
    } else if (Cmd == "close") {
      S.close();
      if (!Threaded) {
        Svc.drain();
        Svc.poll();
      }
      size_t N = printVerdicts(S, Id);
      std::printf("ok close %llu races=%zu\n", (unsigned long long)Id, N);
      std::fflush(stdout);
    } else if (Cmd == "verdicts") {
      if (!Threaded)
        Svc.drain();
      size_t N = printVerdicts(S, Id);
      std::printf("ok verdicts %llu races=%zu\n", (unsigned long long)Id, N);
      std::fflush(stdout);
    } else {
      std::printf("err proto unknown command: %s\n", Cmd.c_str());
      std::fflush(stdout);
    }
  }
}

//===----------------------------------------------------------------------===//
// Soak mode
//===----------------------------------------------------------------------===//

struct SoakClient {
  uint64_t Id = 0;
  Session *S = nullptr;
  Trace T;                        ///< ground truth for the oracle
  std::vector<std::string> Lines; ///< serialized trace, one action per line
  size_t Cursor = 0;
  bool Truncated = false; ///< cut short (deadline/interrupt): skip oracle
  bool Closed = false;
};

/// Feeds every client to completion (round-robin inline, or one producer
/// thread per client), closes them, and checks each surviving client's racy
/// variables against the happens-before oracle over its own trace. Returns
/// the number of diverging clients.
int runSoak(DetectionService &Svc, size_t K, unsigned Steps, unsigned Threads,
            uint64_t Seed, uint64_t DurationMs, bool Threaded) {
  std::vector<SoakClient> Clients(K);
  for (size_t I = 0; I != K; ++I) {
    SoakClient &C = Clients[I];
    C.Id = I + 1;
    RandomTraceParams P;
    P.Seed = Seed + I;
    P.StepsPerThread = Steps;
    P.NumThreads = Threads;
    C.T = generateRandomTrace(P);
    std::istringstream In(serializeTrace(C.T));
    std::string L;
    while (std::getline(In, L))
      if (!L.empty())
        C.Lines.push_back(L);
    DetectionService::OpenResult R = Svc.open(C.Id);
    if (!R.S) {
      std::fprintf(stderr, "soak: open %llu refused: %s\n",
                   (unsigned long long)C.Id, R.Error.c_str());
      return 1;
    }
    C.S = R.S;
  }

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(DurationMs ? DurationMs : ~0ull >> 20);
  auto PastDeadline = [&] {
    return DurationMs && std::chrono::steady_clock::now() >= Deadline;
  };

  // One feed step; returns false once the client is done (or dead).
  auto FeedOne = [&](SoakClient &C) -> bool {
    if (C.Closed)
      return false;
    if (C.Cursor >= C.Lines.size() || interrupted() || PastDeadline()) {
      C.Truncated = C.Cursor < C.Lines.size();
      C.S->close();
      C.Closed = true;
      return false;
    }
    FeedResult R = feedWithRetry(Svc, *C.S, C.Lines[C.Cursor], Threaded);
    if (R.St == FeedResult::Status::Accepted) {
      ++C.Cursor;
      return true;
    }
    if (R.St == FeedResult::Status::Backpressure) // interrupted mid-retry
      C.Truncated = true;
    else
      std::fprintf(stderr, "soak: client %llu stopped at line %zu: %s\n",
                   (unsigned long long)C.Id, C.Cursor, R.Error.c_str());
    C.Closed = true; // session was torn down (or we are bailing out)
    return false;
  };

  if (Threaded) {
    std::vector<std::thread> Producers;
    Producers.reserve(K);
    for (SoakClient &C : Clients)
      Producers.emplace_back([&] {
        while (FeedOne(C))
          ;
      });
    for (std::thread &T : Producers)
      T.join();
  } else {
    // Round-robin one line per client per round, so the shards always see a
    // genuinely interleaved multi-client stream even without threads.
    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (SoakClient &C : Clients)
        Progress |= FeedOne(C);
      Svc.pumpAll();
      Svc.poll();
    }
    Svc.drain();
  }

  // Quiesce before comparing: every queued item applied, verdicts delivered.
  Svc.shutdown();

  int Diverged = 0;
  size_t Compared = 0, Skipped = 0, TotalRaces = 0;
  for (SoakClient &C : Clients) {
    std::vector<RaceReport> Got = C.S->takeVerdicts();
    TotalRaces += Got.size();
    CloseReason R = C.S->closeReason();
    bool Survived = !C.Truncated && (R == CloseReason::ClientClose ||
                                     R == CloseReason::ServiceShutdown);
    if (!Survived) {
      // Killed by chaos (shed / shard-lost / error budget) or cut short:
      // the loss is accounted in ServiceHealth, not comparable here.
      ++Skipped;
      continue;
    }
    ++Compared;
    std::set<uint64_t> GotVars, WantVars;
    for (const RaceReport &Rep : Got)
      GotVars.insert(Rep.Var.key());
    RaceOracle O(C.T, Svc.config().Engine.Semantics);
    for (const VarId &V : O.racyVars())
      WantVars.insert(V.key());
    if (GotVars != WantVars) {
      ++Diverged;
      std::fprintf(stderr,
                   "soak: client %llu DIVERGED: service=%zu oracle=%zu racy "
                   "var(s)\n",
                   (unsigned long long)C.Id, GotVars.size(), WantVars.size());
    }
  }
  std::printf("soak clients=%zu compared=%zu skipped=%zu races=%zu "
              "diverged=%d\n",
              K, Compared, Skipped, TotalRaces, Diverged);
  return Diverged ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  installSignalHandlers();

  ServiceConfig SC;
  bool Threaded = false;
  size_t SoakClients = 0;
  unsigned SoakSteps = 40, SoakThreads = 4;
  uint64_t Seed = 1, DurationMs = 0, IdleTimeoutMs = 0;
  uint64_t MetricsIntervalMs = 0;
  size_t HistoryCap = 512;
  bool TraceSet = false;
  bool TelemetrySet = false;
  std::string TraceOutPath;
  bool ListenSet = false, ScrapeSet = false;
  uint16_t ListenPort = 0, ScrapePortNum = 0;
  shm::ShmConfig ShmC;
  uint64_t ShmWedgeMs = 5000;
  std::string MetricsJsonPath, HealthJsonPath;
  FailpointConfig FC;
  bool AnyFailpoint = false;

  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    const OptSpec *S = findOpt(Arg);
    if (!S)
      return usage();
    const char *V = nullptr;
    if (S->Arg) {
      if (I + 1 >= Argc)
        return usage();
      V = Argv[++I];
    }
    auto ParseUnsigned = [&](bool AllowZero) -> uint64_t {
      char *End = nullptr;
      uint64_t N = std::strtoull(V, &End, 10);
      if (End == V || *End || (!AllowZero && !N)) {
        std::fprintf(stderr, "%s wants a %s integer, got '%s'\n", S->Flag,
                     AllowZero ? "non-negative" : "positive", V);
        std::exit(126);
      }
      return N;
    };
    switch (S->Id) {
    case Opt::Shards:
      SC.Shards = static_cast<unsigned>(ParseUnsigned(false));
      break;
    case Opt::RingCapacity:
      SC.RingCapacity = ParseUnsigned(false);
      break;
    case Opt::MaxQueuedBytes:
      SC.MaxQueuedBytes = ParseUnsigned(false);
      break;
    case Opt::MaxSessions:
      SC.MaxSessions = ParseUnsigned(false);
      break;
    case Opt::ErrorBudget:
      SC.SessionErrorBudget = ParseUnsigned(true);
      break;
    case Opt::IdleTimeoutMs:
      IdleTimeoutMs = ParseUnsigned(true);
      break;
    case Opt::JournalCap:
      SC.JournalCapActions = ParseUnsigned(false);
      break;
    case Opt::NoReplay:
      SC.ReplayOnReincarnation = false;
      break;
    case Opt::Threads:
      Threaded = true;
      break;
    case Opt::Tier:
      if (!parseTierMode(V, SC.Engine.Tier)) {
        std::fprintf(stderr,
                     "--tier wants precise|tiered|sampling, got '%s'\n", V);
        return 126;
      }
      break;
    case Opt::SamplingPpm: {
      uint64_t N = ParseUnsigned(true);
      if (N > 1000000) {
        std::fprintf(stderr, "--sampling-ppm wants 0..1000000, got '%s'\n", V);
        return 126;
      }
      SC.Engine.SamplingRatePpm = static_cast<uint32_t>(N);
      break;
    }
    case Opt::SamplingBudget:
      SC.Engine.SamplingBudget = static_cast<uint32_t>(ParseUnsigned(true));
      break;
    case Opt::Telemetry:
      if (!parseTelemetryLevel(V, SC.Telemetry)) {
        std::fprintf(stderr, "--telemetry wants off|counters|full, got '%s'\n",
                     V);
        return 126;
      }
      TelemetrySet = true;
      break;
    case Opt::MetricsJson:
      MetricsJsonPath = V;
      break;
    case Opt::HealthJson:
      HealthJsonPath = V;
      break;
    case Opt::MetricsIntervalMs:
      MetricsIntervalMs = ParseUnsigned(false);
      break;
    case Opt::HistoryCapacity:
      HistoryCap = static_cast<size_t>(ParseUnsigned(false));
      break;
    case Opt::TracePpm: {
      uint64_t N = ParseUnsigned(true);
      if (N > 1000000) {
        std::fprintf(stderr, "--trace-ppm wants 0..1000000, got '%s'\n", V);
        return 126;
      }
      SC.Trace.SampleRatePpm = static_cast<uint32_t>(N);
      TraceSet = true;
      break;
    }
    case Opt::TraceSeed:
      SC.Trace.Seed = ParseUnsigned(true);
      break;
    case Opt::TraceOut:
      TraceOutPath = V;
      break;
    case Opt::Listen: {
      uint64_t N = ParseUnsigned(true);
      if (N > 65535) {
        std::fprintf(stderr, "--listen wants a port (0..65535), got '%s'\n",
                     V);
        return 126;
      }
      ListenSet = true;
      ListenPort = static_cast<uint16_t>(N);
      break;
    }
    case Opt::ScrapePort: {
      uint64_t N = ParseUnsigned(true);
      if (N > 65535) {
        std::fprintf(stderr,
                     "--scrape-port wants a port (0..65535), got '%s'\n", V);
        return 126;
      }
      ScrapeSet = true;
      ScrapePortNum = static_cast<uint16_t>(N);
      break;
    }
    case Opt::ShmPath:
      ShmC.Path = V;
      break;
    case Opt::ShmRings:
      ShmC.Rings = static_cast<uint32_t>(ParseUnsigned(false));
      break;
    case Opt::ShmWedgeMs:
      ShmWedgeMs = ParseUnsigned(true);
      break;
    case Opt::Soak:
      SoakClients = ParseUnsigned(false);
      break;
    case Opt::SoakSteps:
      SoakSteps = static_cast<unsigned>(ParseUnsigned(false));
      break;
    case Opt::SoakThreads:
      SoakThreads = static_cast<unsigned>(ParseUnsigned(false));
      break;
    case Opt::Seed:
      Seed = ParseUnsigned(true);
      break;
    case Opt::DurationMs:
      DurationMs = ParseUnsigned(false);
      break;
    case Opt::FailpointArg:
      if (!parseFailpointArg(V, FC)) {
        std::fprintf(stderr, "--failpoint wants <site>=<ppm>, got '%s'\n", V);
        return 126;
      }
      AnyFailpoint = true;
      break;
    case Opt::Help:
      usage(stdout);
      return 0;
    }
  }
  SC.IdleTimeoutNanos = IdleTimeoutMs * 1000000ull;
  if (TraceSet || !TraceOutPath.empty()) {
    SC.Trace.Enabled = true;
    // Stage attribution lands in pipe.* histograms, a full-telemetry
    // surface: tracing implies full unless the operator said otherwise.
    if (!TelemetrySet)
      SC.Telemetry = TelemetryLevel::Full;
  }

  std::optional<FailpointScope> Chaos;
  if (AnyFailpoint) {
    FC.Seed = Seed;
    Chaos.emplace(FC);
  }

  DetectionService Svc(SC);
  if (Threaded)
    Svc.start();

  // Socket mode: either --listen or --scrape-port switches the front end
  // from stdin to the poll()-based NetServer (stdio mode is untouched
  // otherwise). optional<> because NetServer is neither copyable nor
  // movable; emplace constructs it in place.
  std::optional<net::NetServer> Net;
  if (ListenSet || ScrapeSet) {
    net::NetConfig NC;
    NC.Port = ListenPort;
    NC.Scrape = ScrapeSet;
    NC.ScrapePort = ScrapePortNum;
    NC.InlinePump = !Threaded;
    Net.emplace(Svc, NC);
    std::string Err;
    if (!Net->start(Err)) {
      std::fprintf(stderr, "goldilocks-serve: %s\n", Err.c_str());
      return 126;
    }
    std::printf("listening port=%u scrape-port=%u\n", Net->port(),
                ScrapeSet ? Net->scrapePort() : 0);
    std::fflush(stdout);
  }

  // Shared-memory mode: the ring front end serves the SAME service (and
  // the same client ids) as the socket front end, so a host can run both
  // — co-located producers on the segment, remote ones on TCP.
  std::optional<shm::ShmServer> Shm;
  if (!ShmC.Path.empty()) {
    ShmC.WedgeTimeoutNanos = ShmWedgeMs * 1000000ull;
    ShmC.InlinePump = !Threaded;
    Shm.emplace(Svc, ShmC);
    std::string Err;
    if (!Shm->start(Err)) {
      std::fprintf(stderr, "goldilocks-serve: %s\n", Err.c_str());
      return 126;
    }
    std::printf("shm segment=%s rings=%u\n", Shm->path().c_str(), ShmC.Rings);
    std::fflush(stdout);
  }

  // One SnapshotProducer behind every live render path: the interval
  // emitter, the exit-time metrics artifact, and the scrape port's
  // /metrics/history ring all pull from this single source, so the
  // documents can never drift between paths.
  // Artifact precedence when several front ends are live: the shm document
  // embeds service health plus the shm.* section, so it wins over the net
  // document for the file artifacts; the HTTP scrape endpoint always serves
  // the net renderer's own view regardless.
  SnapshotProducer::Config PC;
  PC.Source = Shm ? "goldilocks-shmserver"
              : Net ? "goldilocks-netserver"
                    : "goldilocks-serve";
  PC.HistoryCapacity = HistoryCap;
  PC.IntervalHintMillis = MetricsIntervalMs ? MetricsIntervalMs : 1000;
  SnapshotProducer Producer(PC, [&]() -> TelemetrySnapshot {
    if (Shm)
      return Shm->metricsSnapshot();
    if (Net)
      return Net->metricsSnapshot();
    return Svc.telemetry();
  });
  if (Net)
    Net->bindHistory(&Producer);

  auto EmitSnapshots = [&](bool Final) -> bool {
    bool Ok = true;
    if (!HealthJsonPath.empty()) {
      std::string Doc = Shm   ? Shm->healthJson(interrupted())
                        : Net ? Net->healthJson(interrupted())
                              : renderHealthJson(Svc.health(),
                                                 "goldilocks-serve",
                                                 interrupted());
      std::ofstream Out(HealthJsonPath);
      if (Out)
        Out << Doc << '\n';
      if (!Out) {
        if (Final)
          std::fprintf(stderr, "error: failed to write %s\n",
                       HealthJsonPath.c_str());
        Ok = false;
      }
    }
    if (!MetricsJsonPath.empty()) {
      std::string Doc = Producer.metricsJson();
      std::ofstream Out(MetricsJsonPath);
      if (Out)
        Out << Doc << '\n';
      if (!Out) {
        if (Final)
          std::fprintf(stderr, "error: failed to write %s\n",
                       MetricsJsonPath.c_str());
        Ok = false;
      }
    }
    return Ok;
  };

  // --metrics-interval-ms: a snapshot thread keeps the JSON artifacts (and
  // a stdout health line) fresh while the server runs, so a long-lived
  // stdio deployment is observable without the scrape endpoint. health()
  // and telemetry() are thread-safe snapshots; file writes are exclusive
  // to this thread until it is joined.
  std::atomic<bool> SnapStop{false};
  std::thread SnapThread;
  if (MetricsIntervalMs) {
    SnapThread = std::thread([&] {
      uint64_t SliceMs = 20;
      for (;;) {
        for (uint64_t Slept = 0; Slept < MetricsIntervalMs;
             Slept += SliceMs) {
          if (SnapStop.load(std::memory_order_relaxed))
            return;
          std::this_thread::sleep_for(std::chrono::milliseconds(SliceMs));
        }
        if (SnapStop.load(std::memory_order_relaxed))
          return;
        Producer.sample(Svc.nowNanos());
        EmitSnapshots(/*Final=*/false);
        std::printf("health %s\n", Svc.health().str().c_str());
        std::fflush(stdout);
      }
    });
  }

  int Rc = 0;
  if (Net || Shm) {
    // One serving thread drives both front ends. Whichever found work last
    // round sets the pace: any busy front end drops every timeout to zero
    // so a hot ring is never throttled by the other side's poll sleep.
    size_t ShmBusy = 0;
    while (!interrupted()) {
      if (Net)
        Net->pollOnce(Shm ? (ShmBusy ? 0 : 5) : 50);
      if (Shm)
        ShmBusy = Shm->pollOnce(Net || ShmBusy ? 0 : 50);
    }
    // Crash-only drain: settle every complete frame already on the wire
    // (or published in a ring) into the service before quiescing, so
    // SIGTERM loses nothing that reached us.
    if (Net)
      Net->drainAndStop();
    if (Shm)
      Shm->drainAndStop();
  } else if (SoakClients) {
    Rc = runSoak(Svc, SoakClients, SoakSteps, SoakThreads, Seed, DurationMs,
                 Threaded);
  } else {
    runProtocol(Svc, Threaded);
  }

  // Crash-only quiesce (idempotent — soak already did it), then the final
  // dump. This path runs identically for quit, EOF, SIGINT and SIGTERM.
  Svc.shutdown();
  if (interrupted())
    std::fprintf(stderr, "goldilocks-serve: interrupted; quiesced cleanly\n");

  if (SnapThread.joinable()) {
    SnapStop.store(true, std::memory_order_relaxed);
    SnapThread.join();
  }

  ServiceHealth H = Svc.health();
  std::printf("final %s\n", H.str().c_str());
  std::fflush(stdout);

  if (!TraceOutPath.empty() && Svc.spanSink()) {
    if (!Svc.spanSink()->writeFile(TraceOutPath)) {
      std::fprintf(stderr, "error: failed to write %s\n",
                   TraceOutPath.c_str());
      return 126;
    }
  }
  if (!EmitSnapshots(/*Final=*/true))
    return 126;
  return Rc;
}
