#!/usr/bin/env bash
# Builds and runs the test suite under each requested sanitizer, one build
# tree per sanitizer so the instrumented objects never mix.
#
#   tools/run_sanitized_tests.sh                 # address + undefined + thread
#   tools/run_sanitized_tests.sh address         # just ASan
#   tools/run_sanitized_tests.sh thread -R chaos # TSan, extra args to ctest
#
# The first argument selects the sanitizer ("all" or empty = every one);
# anything after it is forwarded to ctest verbatim.
set -euo pipefail

cd "$(dirname "$0")/.."

SELECT="${1:-all}"
[ "$#" -gt 0 ] && shift
CTEST_ARGS=("$@")

# Accept the short spellings too (the CI matrix uses them).
case "$SELECT" in
  asan) SELECT=address ;;
  tsan) SELECT=thread ;;
  ubsan) SELECT=undefined ;;
esac

case "$SELECT" in
  all) SANITIZERS=(address undefined thread) ;;
  address|thread|undefined) SANITIZERS=("$SELECT") ;;
  *)
    echo "usage: $0 [all|address|asan|thread|tsan|undefined|ubsan]" \
         "[ctest args...]" >&2
    exit 2
    ;;
esac

FAILED=()
for SAN in "${SANITIZERS[@]}"; do
  BUILD="build-${SAN}"
  mkdir -p "$BUILD"
  echo "=== ${SAN}: configuring ${BUILD} ==="
  cmake -B "$BUILD" -S . -DGOLD_SANITIZE="$SAN" > "$BUILD/configure.log" 2>&1 \
    || { echo "configure failed, see $BUILD/configure.log"; exit 1; }
  echo "=== ${SAN}: building ==="
  cmake --build "$BUILD" -j > "$BUILD/build.log" 2>&1 \
    || { echo "build failed, see $BUILD/build.log"; exit 1; }
  echo "=== ${SAN}: testing ==="
  # halt_on_error keeps a sanitizer report from being drowned out by later
  # cascading failures; the chaos/governor tests exercise the failure paths
  # these builds exist to check.
  if (cd "$BUILD" && \
      ASAN_OPTIONS=halt_on_error=1 \
      UBSAN_OPTIONS=halt_on_error=1:print_stacktrace=1 \
      TSAN_OPTIONS=halt_on_error=1 \
      ctest --output-on-failure "${CTEST_ARGS[@]}"); then
    echo "=== ${SAN}: OK ==="
  else
    echo "=== ${SAN}: FAILED ==="
    FAILED+=("$SAN")
  fi
done

if [ "${#FAILED[@]}" -gt 0 ]; then
  echo "sanitizer failures: ${FAILED[*]}" >&2
  exit 1
fi
echo "all sanitizer runs passed"
