//===- tests/ChaosTest.cpp - Seeded chaos / fault-injection sweep ---------===//
///
/// Replays many seeded random traces while failpoints inject allocation
/// failures and GC stalls — some runs additionally under punishing resource
/// caps — and differentially checks every verdict against the
/// happens-before oracle (verdict machinery from DifferentialHarness.h):
///
///  * reported races are always real (soundness survives every fault);
///  * variables the governor did not degrade still get the exact verdict;
///  * the degraded set reported by the engine is precisely the set of
///    variables whose verdict may differ from the oracle;
///  * nothing crashes, throws out of the hooks, or deadlocks.
///
/// Random traces allocate all shared objects up front, so a variable that
/// appears in degradedVars() at the end of the trace was degraded for the
/// whole remainder of the trace — the end-of-run snapshot is the full
/// "ever degraded" set and can be used to partition the comparison.
///
//===----------------------------------------------------------------------===//

#include "DifferentialHarness.h"
#include "support/Failpoints.h"

#include <set>

using namespace gold;
using namespace gold::difftest;

TEST(ChaosTest, SeededFaultSweepStaysSoundAndPreciselyDegraded) {
  constexpr unsigned NumSeeds = 120;
  uint64_t TotalFires = 0;
  unsigned DegradedRuns = 0, GlobalRuns = 0;

  for (uint64_t Seed = 0; Seed != NumSeeds; ++Seed) {
    Trace T = generateRandomTrace(chaosParams(Seed));

    EngineConfig C;
    C.GcThreshold = Seed % 2 ? 64 : 256;
    if (Seed % 3 == 0) {
      // Every third run also squeezes the governor hard enough that the
      // degradation ladder fires on top of the injected faults.
      C.MaxCells = 16 + Seed % 16;
      C.MaxInfoRecords = 6 + Seed % 8;
    }
    GoldilocksDetector D(C);

    FailpointConfig FC;
    FC.Seed = 0xFA11 + Seed;
    FC.StallMicros = 1;
    FC.rate(Failpoint::EngineCellAlloc, 2000)
        .rate(Failpoint::EngineInfoAlloc, 2000)
        .rate(Failpoint::EngineGcStall, 5000);

    std::vector<RaceReport> Races;
    {
      FailpointScope Scope(FC);
      Races = D.runTrace(T);
      for (unsigned F = 0; F != NumFailpoints; ++F)
        TotalFires +=
            Failpoints::instance().fires(static_cast<Failpoint>(F));
    }

    std::set<VarId> Reported = racyVarSet(Races);
    std::set<VarId> Oracle = oracleVarSet(T);
    EngineHealth H = D.engine().health();

    // Soundness is unconditional: a reported race is a real race, no
    // matter what was injected or degraded.
    for (VarId V : Reported)
      ASSERT_TRUE(Oracle.count(V))
          << "false alarm on " << V.str() << " at chaos seed " << Seed;

    if (H.GloballyDegraded) {
      // The engine stopped checking entirely at some point; only the
      // soundness half above can be asserted.
      ++GlobalRuns;
      continue;
    }

    // Exactness on everything the governor did not give up on: an oracle
    // race on a non-degraded variable must have been reported.
    std::set<VarId> Degraded;
    for (VarId V : D.engine().degradedVars())
      Degraded.insert(V);
    for (VarId V : Oracle) {
      if (Degraded.count(V))
        continue;
      ASSERT_TRUE(Reported.count(V))
          << "missed race on non-degraded " << V.str() << " at chaos seed "
          << Seed;
    }

    if (!Degraded.empty()) {
      ++DegradedRuns;
      // The stats counter and the reported set agree (nothing re-enables
      // variables mid-trace in these workloads).
      EXPECT_EQ(H.DegradedVars, Degraded.size()) << "chaos seed " << Seed;
    } else {
      EXPECT_PRED_FORMAT2(sameVerdicts, Oracle, Reported)
          << "chaos seed " << Seed;
    }
  }

  // The sweep must actually have exercised the machinery, otherwise the
  // assertions above are vacuous.
  EXPECT_GT(TotalFires, 0u) << "no failpoint ever fired";
  EXPECT_GT(DegradedRuns + GlobalRuns, 0u) << "no run ever degraded";
}

TEST(ChaosTest, RepeatedRunsAreDeterministic) {
  // Same trace seed + same failpoint seed => bit-identical verdicts and
  // health counters. This is what makes chaos failures replayable.
  Trace T = generateRandomTrace(chaosParams(17));
  FailpointConfig FC;
  FC.Seed = 4242;
  FC.rate(Failpoint::EngineCellAlloc, 50000)
      .rate(Failpoint::EngineInfoAlloc, 50000);

  auto Run = [&](std::vector<RaceReport> &Races, EngineHealth &H) {
    GoldilocksDetector D;
    FailpointScope Scope(FC);
    Races = D.runTrace(T);
    H = D.engine().health();
  };

  std::vector<RaceReport> R1, R2;
  EngineHealth H1, H2;
  Run(R1, H1);
  Run(R2, H2);

  ASSERT_EQ(R1.size(), R2.size());
  for (size_t I = 0; I != R1.size(); ++I) {
    EXPECT_EQ(R1[I].Var, R2[I].Var);
    EXPECT_EQ(R1[I].Thread, R2[I].Thread);
  }
  EXPECT_EQ(H1.DegradationEvents, H2.DegradationEvents);
  EXPECT_EQ(H1.DegradedVars, H2.DegradedVars);
  EXPECT_EQ(H1.ForcedGcs, H2.ForcedGcs);
  EXPECT_EQ(H1.GloballyDegraded, H2.GloballyDegraded);
}

TEST(ChaosTest, FaultFreeCapsStayExactAcrossSweep) {
  // Without injected allocation faults, the first two rungs of the ladder
  // (forced GC + coarsening) keep every verdict exact even under a tight
  // cell cap — across the same seed sweep the chaos test uses.
  for (uint64_t Seed = 0; Seed != 40; ++Seed) {
    Trace T = generateRandomTrace(chaosParams(Seed));
    EngineConfig C;
    C.MaxCells = 12;
    GoldilocksDetector D(C);
    auto Races = D.runTrace(T);
    EXPECT_TRUE(D.engine().degradedVars().empty()) << "chaos seed " << Seed;
    EXPECT_PRED_FORMAT2(sameVerdicts, oracleVarSet(T), racyVarSet(Races))
        << "chaos seed " << Seed;
  }
}
