//===- tests/TierTest.cpp - Tiered-pipeline differential proofs -----------===//
///
/// The headline property of the adaptive-precision pipeline, proven over the
/// shared differential harness: the tiered mode (tier-0 prefilter + sticky
/// escalation to the precise engine) produces verdicts *identical* to pure
/// Goldilocks — same racy-variable sets, same report sequences — across a
/// wide seeded sweep of trace shapes, thread counts, and engine
/// configurations. The sampling tier is held to the soundness half only
/// (precision 1.0: it never invents a race; recall is traded for cost and
/// measured in bench_tiers), plus determinism so sampled runs replay.
///
/// A true-concurrency run drives the tiered engine through real OS threads
/// (the harness mixed workload), which is what the tsan/asan rows of the CI
/// sanitizer matrix exercise.
///
//===----------------------------------------------------------------------===//

#include "DifferentialHarness.h"

#include <set>

using namespace gold;
using namespace gold::difftest;

namespace {

std::vector<RaceReport> run(const Trace &T, const EngineConfig &C,
                            EngineStats *Stats = nullptr) {
  GoldilocksDetector D(C);
  std::vector<RaceReport> Races = D.runTrace(T);
  if (Stats)
    *Stats = D.engine().stats();
  return Races;
}

/// Exact report-sequence equality: the tiered engine must not just find the
/// same racy variables but emit the very same reports in the same order.
void expectSameReports(const std::vector<RaceReport> &Precise,
                       const std::vector<RaceReport> &Tiered,
                       uint64_t Seed) {
  ASSERT_EQ(Precise.size(), Tiered.size()) << "seed " << Seed;
  for (size_t I = 0; I != Precise.size(); ++I) {
    EXPECT_EQ(Precise[I].Var, Tiered[I].Var) << "seed " << Seed;
    EXPECT_EQ(Precise[I].Thread, Tiered[I].Thread) << "seed " << Seed;
    EXPECT_EQ(Precise[I].IsWrite, Tiered[I].IsWrite) << "seed " << Seed;
  }
}

/// A deterministic race-free workload: every thread round-robins between
/// thread-private fields and a shared object guarded by one global lock.
/// No legal interleaving races, so the precise engine's pair checks here
/// are pure overhead — exactly what the tier-0 prefilter exists to remove.
Trace raceFreeTrace(unsigned NumThreads, unsigned Steps) {
  constexpr ObjectId SharedObj = 1;
  constexpr ObjectId Lock = 2;
  constexpr ObjectId PrivBase = 10;

  TraceBuilder B;
  B.append(mkAct(ActionKind::Alloc, 0, VarId{SharedObj, 4}));
  B.append(mkAct(ActionKind::Alloc, 0, lockVar(Lock)));
  for (unsigned T = 1; T <= NumThreads; ++T) {
    B.append(mkAct(ActionKind::Alloc, 0, VarId{PrivBase + T, 4}));
    B.append(mkAct(ActionKind::Fork, 0, VarId{}, T));
  }
  // Round-robin so consecutive accesses to the shared object really do come
  // from different threads and the lock is doing the ordering.
  for (unsigned S = 0; S != Steps; ++S) {
    for (unsigned T = 1; T <= NumThreads; ++T) {
      VarId Priv{PrivBase + T, static_cast<FieldId>(S % 4)};
      B.append(mkAct(ActionKind::Write, T, Priv));
      B.append(mkAct(ActionKind::Read, T, Priv));
      B.append(mkAct(ActionKind::Acquire, T, lockVar(Lock)));
      B.append(mkAct(ActionKind::Write, T,
                     VarId{SharedObj, static_cast<FieldId>(S % 4)}));
      B.append(mkAct(ActionKind::Release, T, lockVar(Lock)));
    }
  }
  for (unsigned T = 1; T <= NumThreads; ++T) {
    B.append(mkAct(ActionKind::Terminate, T));
    B.append(mkAct(ActionKind::Join, 0, VarId{}, T));
  }
  return B.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// Escalation differential sweep: tiered == precise, exactly
//===----------------------------------------------------------------------===//

TEST(TierTest, TieredMatchesPreciseAcrossSweep) {
  // >= 64 seeds; thread counts 2..5 and transaction mixes vary with the
  // seed through the shared sweep shape. Each seed is checked under four
  // engine configurations so the tier-0 proofs are exercised with and
  // without the short circuits / GC pressure they must commute with.
  constexpr uint64_t NumSeeds = 96;
  uint64_t TotalFiltered = 0, TotalEscalations = 0;

  for (uint64_t Seed = 1; Seed <= NumSeeds; ++Seed) {
    Trace T = generateRandomTrace(sweepParams(Seed));
    std::set<VarId> Oracle = oracleVarSet(T);

    EngineConfig Precise; // defaults: TierMode::Precise
    std::vector<RaceReport> PreciseRaces = run(T, Precise);
    EXPECT_PRED_FORMAT2(sameVerdicts, Oracle, racyVarSet(PreciseRaces))
        << "precise vs oracle, seed " << Seed;

    // Plain tiered: verdict sets AND report sequences identical.
    EngineConfig TC;
    TC.Tier = TierMode::Tiered;
    EngineStats TS;
    std::vector<RaceReport> TieredRaces = run(T, TC, &TS);
    EXPECT_PRED_FORMAT2(sameVerdicts, racyVarSet(PreciseRaces),
                        racyVarSet(TieredRaces))
        << "tiered vs precise, seed " << Seed;
    expectSameReports(PreciseRaces, TieredRaces, Seed);
    TotalFiltered += TS.TierFiltered;
    TotalEscalations += TS.Escalations;

    // Tiered with every short circuit disabled: escalated variables take
    // the full-walk path, which must agree with the filtered one.
    EngineConfig NoSc = TC;
    NoSc.EnableXactShortCircuit = false;
    NoSc.EnableSameThreadShortCircuit = false;
    NoSc.EnableALockShortCircuit = false;
    NoSc.EnableFilteredWalk = false;
    EXPECT_PRED_FORMAT2(sameVerdicts, racyVarSet(PreciseRaces),
                        racyVarSet(run(T, NoSc)))
        << "tiered/no-sc vs precise, seed " << Seed;

    // Tiered under aggressive GC: the prefilter must commute with
    // partially-eager advancement.
    EngineConfig SmallGc = TC;
    SmallGc.GcThreshold = 24;
    SmallGc.TrimFraction = 0.5;
    EXPECT_PRED_FORMAT2(sameVerdicts, racyVarSet(PreciseRaces),
                        racyVarSet(run(T, SmallGc)))
        << "tiered/gc vs precise, seed " << Seed;

    // Repeat-report mode (DisableVarAfterRace off): the same-epoch memo is
    // gated off, so every repeated access must re-report exactly as the
    // precise engine does. Compare like with like.
    EngineConfig PreciseRpt;
    PreciseRpt.DisableVarAfterRace = false;
    EngineConfig TieredRpt = TC;
    TieredRpt.DisableVarAfterRace = false;
    std::vector<RaceReport> PR = run(T, PreciseRpt);
    std::vector<RaceReport> TR = run(T, TieredRpt);
    EXPECT_PRED_FORMAT2(sameVerdicts, racyVarSet(PR), racyVarSet(TR))
        << "tiered/repeat vs precise/repeat, seed " << Seed;
    expectSameReports(PR, TR, Seed);
  }

  // The sweep must actually exercise both halves of the tier machinery, or
  // the equalities above are vacuous.
  EXPECT_GT(TotalFiltered, 0u) << "tier 0 never filtered a check";
  EXPECT_GT(TotalEscalations, 0u) << "no variable ever escalated";
}

//===----------------------------------------------------------------------===//
// Pair-check reduction on race-free workloads
//===----------------------------------------------------------------------===//

TEST(TierTest, TieredCutsPairChecksTenfoldOnRaceFreeWorkload) {
  Trace T = raceFreeTrace(/*NumThreads=*/4, /*Steps=*/200);
  ASSERT_TRUE(oracleVarSet(T).empty()) << "workload is not race-free";

  EngineConfig Precise;
  EngineStats PS;
  EXPECT_TRUE(run(T, Precise, &PS).empty());

  EngineConfig TC;
  TC.Tier = TierMode::Tiered;
  EngineStats TS;
  EXPECT_TRUE(run(T, TC, &TS).empty());

  // The acceptance bar: >= 10x fewer precise pair checks, no escalations
  // (nothing is suspicious), and the filter accounted for every skip.
  EXPECT_GT(PS.PairChecks, 0u);
  EXPECT_GE(PS.PairChecks, 10 * (TS.PairChecks ? TS.PairChecks : 1))
      << "precise=" << PS.PairChecks << " tiered=" << TS.PairChecks;
  EXPECT_EQ(TS.Escalations, 0u);
  EXPECT_GT(TS.TierFiltered, 0u);
}

//===----------------------------------------------------------------------===//
// Sampling tier: precision 1.0, deterministic, full-rate degenerates
//===----------------------------------------------------------------------===//

TEST(TierTest, SamplingNeverInventsRaces) {
  // Whatever the rate, a sampled run sees a legal sub-trace of the data
  // accesses over the full synchronization order — every report it emits
  // must be a real race (precision 1.0). Recall is measured in bench_tiers.
  for (uint64_t Seed = 1; Seed <= 32; ++Seed) {
    Trace T = generateRandomTrace(sweepParams(Seed));
    std::set<VarId> Oracle = oracleVarSet(T);
    for (uint32_t Ppm : {0u, 50000u, 250000u, 600000u}) {
      EngineConfig C;
      C.Tier = TierMode::Sampling;
      C.SamplingRatePpm = Ppm;
      C.SamplingBudget = 8;
      for (const RaceReport &R : run(T, C))
        EXPECT_TRUE(Oracle.count(R.Var))
            << "sampling invented a race on " << R.Var.str() << " at seed "
            << Seed << " rate " << Ppm;
    }
  }
}

TEST(TierTest, SamplingAtFullRateMatchesPrecise) {
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    Trace T = generateRandomTrace(sweepParams(Seed));
    EngineConfig Precise;
    EngineConfig Full;
    Full.Tier = TierMode::Sampling;
    Full.SamplingRatePpm = 1000000; // keep everything
    EngineStats FS;
    std::vector<RaceReport> PR = run(T, Precise);
    std::vector<RaceReport> FR = run(T, Full, &FS);
    EXPECT_PRED_FORMAT2(sameVerdicts, racyVarSet(PR), racyVarSet(FR))
        << "full-rate sampling vs precise, seed " << Seed;
    expectSameReports(PR, FR, Seed);
    EXPECT_EQ(FS.SampledSkips, 0u);
  }
}

TEST(TierTest, SamplingIsDeterministic) {
  Trace T = generateRandomTrace(sweepParams(7));
  EngineConfig C;
  C.Tier = TierMode::Sampling;
  C.SamplingRatePpm = 100000;
  C.SamplingBudget = 0; // every access rolls the hash: guaranteed skips

  EngineStats S1, S2;
  std::vector<RaceReport> R1 = run(T, C, &S1);
  std::vector<RaceReport> R2 = run(T, C, &S2);
  ASSERT_EQ(R1.size(), R2.size());
  for (size_t I = 0; I != R1.size(); ++I) {
    EXPECT_EQ(R1[I].Var, R2[I].Var);
    EXPECT_EQ(R1[I].Thread, R2[I].Thread);
  }
  EXPECT_EQ(S1.SampledSkips, S2.SampledSkips);
  EXPECT_GT(S1.SampledSkips, 0u) << "rate never skipped anything";
}

//===----------------------------------------------------------------------===//
// True concurrency: tiered engine under real OS threads
//===----------------------------------------------------------------------===//

TEST(TierTest, TieredMixedWorkloadUnderRealThreads) {
  // The harness mixed workload is verdict-stable by construction and
  // asserts engine == oracle == reference internally; running it with the
  // tiered engine proves the prefilter holds the exact verdict under real
  // interleavings — and gives tsan/asan a concurrent tier-state workout.
  for (unsigned Threads : {2u, 4u, 8u}) {
    for (uint64_t Seed : {1u, 2u}) {
      EngineConfig C;
      C.GcThreshold = 256;
      C.Tier = TierMode::Tiered;
      EngineStats St = runMixedWorkload(Threads, Seed, C);
      EXPECT_GT(St.TierFiltered, 0u)
          << "threads=" << Threads << " seed=" << Seed;
    }
  }
}
