//===- tests/VmInfraTest.cpp - heap, monitor and program-model tests ------===//

#include "vm/Builder.h"
#include "vm/Heap.h"

#include <gtest/gtest.h>

#include <thread>

using namespace gold;

TEST(HeapTest, AllocatesSequentialIds) {
  Heap H;
  EXPECT_EQ(H.alloc(0, 2), 1u); // GlobalsRef
  EXPECT_EQ(H.alloc(1, 3), 2u);
  EXPECT_EQ(H.size(), 2u);
  EXPECT_TRUE(H.valid(1));
  EXPECT_TRUE(H.valid(2));
  EXPECT_FALSE(H.valid(0));
  EXPECT_FALSE(H.valid(3));
}

TEST(HeapTest, SlotsStartZeroed) {
  Heap H;
  ObjectId O = H.alloc(0, 4);
  for (FieldId F = 0; F != 4; ++F)
    EXPECT_EQ(H.loadRaw(VarId{O, F}), 0u);
}

TEST(HeapTest, RawLoadStoreRoundTrip) {
  Heap H;
  ObjectId O = H.alloc(0, 2);
  H.storeRaw(VarId{O, 1}, 0xdeadbeefULL);
  EXPECT_EQ(H.loadRaw(VarId{O, 1}), 0xdeadbeefULL);
  EXPECT_EQ(H.loadRaw(VarId{O, 0}), 0u);
}

TEST(HeapTest, StmLockIsExclusiveAndReentrant) {
  Heap H;
  ObjectId O = H.alloc(0, 1);
  EXPECT_TRUE(H.tryLockObject(O, 1));
  EXPECT_TRUE(H.tryLockObject(O, 1));  // same thread: ok
  EXPECT_FALSE(H.tryLockObject(O, 2)); // other thread: refused
  H.unlockObject(O, 1);
  EXPECT_TRUE(H.tryLockObject(O, 2));
  H.unlockObject(O, 2);
}

TEST(HeapTest, ConcurrentAllocationIsSafe) {
  Heap H;
  constexpr int PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T != 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I != PerThread; ++I) {
        ObjectId O = H.alloc(0, 1);
        H.storeRaw(VarId{O, 0}, O);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(H.size(), 4u * PerThread);
  for (ObjectId O = 1; O <= 4 * PerThread; ++O)
    EXPECT_EQ(H.loadRaw(VarId{O, 0}), O);
}

TEST(MonitorTest, ReentrantEnterExit) {
  Monitor M;
  EXPECT_EQ(M.enter(1), 1u);
  EXPECT_EQ(M.enter(1), 2u);
  EXPECT_EQ(M.depth(1), 2u);
  bool Outer = false;
  EXPECT_TRUE(M.exit(1, Outer));
  EXPECT_FALSE(Outer);
  EXPECT_TRUE(M.exit(1, Outer));
  EXPECT_TRUE(Outer);
  EXPECT_EQ(M.owner(), NoThread);
}

TEST(MonitorTest, ExitByNonOwnerFails) {
  Monitor M;
  M.enter(1);
  bool Outer = false;
  EXPECT_FALSE(M.exit(2, Outer));
  EXPECT_TRUE(M.exit(1, Outer));
}

TEST(MonitorTest, NotifyRequiresOwnership) {
  Monitor M;
  EXPECT_FALSE(M.notify(1, false));
  M.enter(1);
  EXPECT_TRUE(M.notify(1, true));
  bool Outer;
  M.exit(1, Outer);
}

TEST(MonitorTest, MutualExclusionUnderContention) {
  Monitor M;
  int Counter = 0;
  std::vector<std::thread> Threads;
  for (int T = 1; T <= 4; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != 1000; ++I) {
        M.enter(static_cast<ThreadId>(T));
        ++Counter; // protected
        bool Outer;
        M.exit(static_cast<ThreadId>(T), Outer);
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Counter, 4000);
}

TEST(MonitorTest, WaitNotifyHandshake) {
  Monitor M;
  bool Flag = false;
  std::thread Waiter([&] {
    M.enter(1);
    while (!Flag)
      M.wait(1);
    bool Outer;
    M.exit(1, Outer);
  });
  std::thread Notifier([&] {
    M.enter(2);
    Flag = true;
    M.notify(2, true);
    bool Outer;
    M.exit(2, Outer);
  });
  Waiter.join();
  Notifier.join();
  EXPECT_TRUE(Flag);
}

TEST(ProgramTest, ValidateCatchesBadJumpTarget) {
  ProgramBuilder PB;
  FunctionBuilder F = PB.function("main", 0);
  F.retVoid();
  PB.setMain(F.id());
  Program P = PB.take();
  P.Functions[0].Code[0].Op = Opcode::Jmp;
  P.Functions[0].Code[0].Idx = 99;
  EXPECT_NE(P.validate().find("jump target"), std::string::npos);
}

TEST(ProgramTest, ValidateCatchesRegisterOverflow) {
  ProgramBuilder PB;
  FunctionBuilder F = PB.function("main", 0);
  F.retVoid();
  PB.setMain(F.id());
  Program P = PB.take();
  P.Functions[0].Code[0].A = 100;
  EXPECT_NE(P.validate().find("register"), std::string::npos);
}

TEST(ProgramTest, ValidateCatchesArityMismatch) {
  ProgramBuilder PB;
  FunctionBuilder Callee = PB.function("callee", 2);
  Callee.retVoid();
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg();
  F.constI(A, 0).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();
  Instr Call;
  Call.Op = Opcode::Call;
  Call.Idx = Callee.id();
  Call.Args = {A}; // callee wants 2
  P.Functions[F.id()].Code.insert(P.Functions[F.id()].Code.begin(), Call);
  EXPECT_NE(P.validate().find("argument count"), std::string::npos);
}

TEST(ProgramTest, ValidateCatchesMissingTerminator) {
  ProgramBuilder PB;
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg();
  F.constI(A, 1);
  PB.setMain(F.id());
  EXPECT_NE(PB.program().validate().find("does not end"),
            std::string::npos);
}

TEST(BuilderTest, ForwardAndBackwardLabels) {
  ProgramBuilder PB;
  uint32_t G = PB.addGlobal("out");
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), One = F.newReg(), C = F.newReg(), N = F.newReg();
  F.constI(A, 0).constI(One, 1).constI(N, 3);
  Label Back = F.label();
  F.bind(Back); // backward target
  F.addI(A, A, One);
  Label Fwd = F.label(); // forward target
  F.cmpLtI(C, A, N).jz(C, Fwd).jmp(Back);
  F.bind(Fwd);
  F.putG(G, A).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();
  EXPECT_TRUE(P.validate().empty());
}

TEST(BuilderTest, InternDeduplicatesStrings) {
  ProgramBuilder PB;
  uint32_t A = PB.intern("hello");
  uint32_t B = PB.intern("world");
  uint32_t C = PB.intern("hello");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(PB.program().StringPool.size(), 2u);
}

TEST(BuilderTest, ForkMarksThreadEntry) {
  ProgramBuilder PB;
  FunctionBuilder W = PB.function("worker", 0);
  W.retVoid();
  FunctionBuilder F = PB.function("main", 0);
  Reg T = F.newReg();
  F.fork(T, W.id()).join(T).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();
  EXPECT_TRUE(P.Functions[W.id()].IsThreadEntry);
  EXPECT_FALSE(P.Functions[F.id()].IsThreadEntry);
}

TEST(OpcodeTest, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> Names;
  for (int Op = 0; Op <= static_cast<int>(Opcode::Nop); ++Op) {
    std::string N = opcodeName(static_cast<Opcode>(Op));
    EXPECT_FALSE(N.empty());
    EXPECT_NE(N, "?");
    EXPECT_TRUE(Names.insert(N).second) << N << " duplicated";
  }
}

TEST(VmExceptionTest, NamesMatchJavaConventions) {
  EXPECT_STREQ(vmExceptionName(VmException::DataRace), "DataRaceException");
  EXPECT_STREQ(vmExceptionName(VmException::NullPointer),
               "NullPointerException");
}
