//===- tests/BaselineDetectorsTest.cpp - Eraser and VC baseline tests -----===//
///
/// Pins the comparison detectors: the vector-clock baseline is precise
/// (matches the oracle), while Eraser exhibits exactly the false alarms the
/// paper describes for Example 2, indirect handoff and barriers.
///
//===----------------------------------------------------------------------===//

#include "detectors/Eraser.h"
#include "detectors/VectorClockDetector.h"
#include "event/PaperTraces.h"

#include <gtest/gtest.h>

using namespace gold;

TEST(VectorClockTest, SafeTracesAreClean) {
  for (const Trace &T :
       {paperExample2Trace(), paperExample3Trace(), idiomVolatileFlagTrace(),
        idiomForkJoinTrace(), idiomBarrierTrace(),
        idiomIndirectHandoffTrace()}) {
    VectorClockDetector D;
    EXPECT_TRUE(D.runTrace(T).empty());
  }
}

TEST(VectorClockTest, Example4Races) {
  for (bool TxnFirst : {false, true}) {
    VectorClockDetector D;
    auto Races = D.runTrace(paperExample4Trace(TxnFirst));
    ASSERT_EQ(Races.size(), 1u);
    EXPECT_EQ(Races[0].Var, (VarId{1, 0}));
  }
}

TEST(VectorClockTest, UnsyncRace) {
  VectorClockDetector D;
  EXPECT_EQ(D.runTrace(idiomUnsyncRacyTrace()).size(), 1u);
}

TEST(VectorClockTest, LockProtectedIsClean) {
  TraceBuilder B;
  B.acq(1, 9).write(1, 1, 0).rel(1, 9);
  B.acq(2, 9).write(2, 1, 0).rel(2, 9);
  VectorClockDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(EraserTest, LockProtectedIsClean) {
  TraceBuilder B;
  B.acq(1, 9).write(1, 1, 0).rel(1, 9);
  B.acq(2, 9).write(2, 1, 0).rel(2, 9);
  EraserDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(EraserTest, UnsyncRaceIsCaught) {
  EraserDetector D;
  EXPECT_EQ(D.runTrace(idiomUnsyncRacyTrace()).size(), 1u);
}

TEST(EraserTest, FalseAlarmOnExample2) {
  // The paper (Section 4.1): Eraser reports a false race at the last access
  // of Example 2 — o.data's lock changes over time.
  EraserDetector D;
  auto Races = D.runTrace(paperExample2Trace());
  ASSERT_FALSE(Races.empty());
  EXPECT_EQ(Races[0].Var, paper::oData());
}

TEST(EraserTest, FalseAlarmOnIndirectHandoff) {
  EraserDetector D;
  EXPECT_FALSE(D.runTrace(idiomIndirectHandoffTrace()).empty());
}

TEST(EraserTest, FalseAlarmOnBarrier) {
  // Barriers synchronize through volatiles, which Eraser cannot see.
  EraserDetector D;
  EXPECT_FALSE(D.runTrace(idiomBarrierTrace()).empty());
}

TEST(EraserTest, FalseAlarmOnForkJoin) {
  EraserDetector D;
  EXPECT_FALSE(D.runTrace(idiomForkJoinTrace()).empty());
}

TEST(EraserTest, InitializationPatternIsToleratedByStateMachine) {
  // Unsynchronized init followed by lock-protected sharing: the Exclusive
  // state delays lockset refinement until the second thread arrives.
  TraceBuilder B;
  B.write(1, 1, 0).write(1, 1, 0); // init, thread-exclusive
  B.acq(1, 9).write(1, 1, 0).rel(1, 9);
  B.acq(2, 9).write(2, 1, 0).rel(2, 9);
  EraserDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(EraserTest, ReadSharedStateDoesNotAlarm) {
  TraceBuilder B;
  B.write(1, 1, 0);
  B.read(2, 1, 0).read(3, 1, 0); // read-shared, no report
  EraserDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(EraserTest, TransactionsModeledAsGlobalLock) {
  // Two transactions touching the same variable: fine under the TL pseudo
  // lock. A plain unlocked access afterwards alarms.
  VarId X{1, 0};
  TraceBuilder B;
  B.commit(1, {}, {X});
  B.commit(2, {X}, {X});
  B.write(3, 1, 0);
  EraserDetector D;
  auto Races = D.runTrace(B.take());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_EQ(Races[0].Thread, 3u);
}
