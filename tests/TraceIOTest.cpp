//===- tests/TraceIOTest.cpp - trace serialization tests ------------------===//

#include "event/PaperTraces.h"
#include "event/RandomTrace.h"
#include "event/TraceIO.h"

#include <gtest/gtest.h>

using namespace gold;

namespace {

void expectSameTrace(const Trace &A, const Trace &B) {
  ASSERT_EQ(A.Actions.size(), B.Actions.size());
  for (size_t I = 0; I != A.Actions.size(); ++I) {
    EXPECT_EQ(A.Actions[I].Kind, B.Actions[I].Kind) << "action " << I;
    EXPECT_EQ(A.Actions[I].Thread, B.Actions[I].Thread) << "action " << I;
    EXPECT_EQ(A.Actions[I].Var, B.Actions[I].Var) << "action " << I;
    EXPECT_EQ(A.Actions[I].Target, B.Actions[I].Target) << "action " << I;
    if (A.Actions[I].Kind == ActionKind::Commit) {
      const CommitSets &CA = A.commitSets(A.Actions[I]);
      const CommitSets &CB = B.commitSets(B.Actions[I]);
      EXPECT_EQ(CA.Reads, CB.Reads) << "action " << I;
      EXPECT_EQ(CA.Writes, CB.Writes) << "action " << I;
    }
  }
}

} // namespace

TEST(TraceIOTest, RoundTripsPaperTraces) {
  for (const Trace &T :
       {paperExample2Trace(), paperExample3Trace(), paperExample4Trace(true),
        idiomBarrierTrace(), idiomForkJoinTrace()}) {
    std::string Text = serializeTrace(T);
    Trace Back;
    std::string Error;
    ASSERT_TRUE(parseTrace(Text, Back, Error)) << Error;
    expectSameTrace(T, Back);
  }
}

TEST(TraceIOTest, RoundTripsRandomTraces) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    RandomTraceParams P;
    P.Seed = Seed;
    P.WBeginTxn = 3;
    Trace T = generateRandomTrace(P);
    std::string Text = serializeTrace(T);
    Trace Back;
    std::string Error;
    ASSERT_TRUE(parseTrace(Text, Back, Error)) << Error;
    expectSameTrace(T, Back);
  }
}

TEST(TraceIOTest, IgnoresCommentsAndBlankLines) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("# a comment\n\nwrite 1 2 0\n\n# done\n", T, Error))
      << Error;
  ASSERT_EQ(T.Actions.size(), 1u);
  EXPECT_EQ(T.Actions[0].Kind, ActionKind::Write);
}

TEST(TraceIOTest, ParsesCommitSets) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("commit 3 R 1:0 2:5 W 1:1\n", T, Error)) << Error;
  ASSERT_EQ(T.Actions.size(), 1u);
  const CommitSets &CS = T.commitSets(T.Actions[0]);
  EXPECT_EQ(CS.Reads, (std::vector<VarId>{VarId{1, 0}, VarId{2, 5}}));
  EXPECT_EQ(CS.Writes, (std::vector<VarId>{VarId{1, 1}}));
}

TEST(TraceIOTest, RejectsMalformedInput) {
  Trace T;
  std::string Error;
  EXPECT_FALSE(parseTrace("frobnicate 1 2\n", T, Error));
  EXPECT_NE(Error.find("unknown action"), std::string::npos);
  EXPECT_FALSE(parseTrace("read 1\n", T, Error));
  EXPECT_FALSE(parseTrace("commit 1 R 1:0\n", T, Error)); // missing W
  EXPECT_FALSE(parseTrace("commit 1 R 1-0 W\n", T, Error)); // bad var token
  EXPECT_NE(Error.find("line 1"), std::string::npos);
}

TEST(TraceIOTest, EmptyInputIsAnEmptyTrace) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("", T, Error));
  EXPECT_TRUE(T.Actions.empty());
}
