//===- tests/TraceIOTest.cpp - trace serialization tests ------------------===//

#include "event/PaperTraces.h"
#include "event/RandomTrace.h"
#include "event/TraceIO.h"

#include <gtest/gtest.h>

using namespace gold;

namespace {

void expectSameTrace(const Trace &A, const Trace &B) {
  ASSERT_EQ(A.Actions.size(), B.Actions.size());
  for (size_t I = 0; I != A.Actions.size(); ++I) {
    EXPECT_EQ(A.Actions[I].Kind, B.Actions[I].Kind) << "action " << I;
    EXPECT_EQ(A.Actions[I].Thread, B.Actions[I].Thread) << "action " << I;
    EXPECT_EQ(A.Actions[I].Var, B.Actions[I].Var) << "action " << I;
    EXPECT_EQ(A.Actions[I].Target, B.Actions[I].Target) << "action " << I;
    if (A.Actions[I].Kind == ActionKind::Commit) {
      const CommitSets &CA = A.commitSets(A.Actions[I]);
      const CommitSets &CB = B.commitSets(B.Actions[I]);
      EXPECT_EQ(CA.Reads, CB.Reads) << "action " << I;
      EXPECT_EQ(CA.Writes, CB.Writes) << "action " << I;
    }
  }
}

} // namespace

TEST(TraceIOTest, RoundTripsPaperTraces) {
  for (const Trace &T :
       {paperExample2Trace(), paperExample3Trace(), paperExample4Trace(true),
        idiomBarrierTrace(), idiomForkJoinTrace()}) {
    std::string Text = serializeTrace(T);
    Trace Back;
    std::string Error;
    ASSERT_TRUE(parseTrace(Text, Back, Error)) << Error;
    expectSameTrace(T, Back);
  }
}

TEST(TraceIOTest, RoundTripsRandomTraces) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    RandomTraceParams P;
    P.Seed = Seed;
    P.WBeginTxn = 3;
    Trace T = generateRandomTrace(P);
    std::string Text = serializeTrace(T);
    Trace Back;
    std::string Error;
    ASSERT_TRUE(parseTrace(Text, Back, Error)) << Error;
    expectSameTrace(T, Back);
  }
}

TEST(TraceIOTest, IgnoresCommentsAndBlankLines) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("# a comment\n\nwrite 1 2 0\n\n# done\n", T, Error))
      << Error;
  ASSERT_EQ(T.Actions.size(), 1u);
  EXPECT_EQ(T.Actions[0].Kind, ActionKind::Write);
}

TEST(TraceIOTest, ParsesCommitSets) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("commit 3 R 1:0 2:5 W 1:1\n", T, Error)) << Error;
  ASSERT_EQ(T.Actions.size(), 1u);
  const CommitSets &CS = T.commitSets(T.Actions[0]);
  EXPECT_EQ(CS.Reads, (std::vector<VarId>{VarId{1, 0}, VarId{2, 5}}));
  EXPECT_EQ(CS.Writes, (std::vector<VarId>{VarId{1, 1}}));
}

TEST(TraceIOTest, RejectsMalformedInput) {
  Trace T;
  std::string Error;
  EXPECT_FALSE(parseTrace("frobnicate 1 2\n", T, Error));
  EXPECT_NE(Error.find("unknown action"), std::string::npos);
  EXPECT_FALSE(parseTrace("read 1\n", T, Error));
  EXPECT_FALSE(parseTrace("commit 1 R 1:0\n", T, Error)); // missing W
  EXPECT_FALSE(parseTrace("commit 1 R 1-0 W\n", T, Error)); // bad var token
  EXPECT_NE(Error.find("line 1"), std::string::npos);
}

TEST(TraceIOTest, MalformedInputTable) {
  // Each entry: input, substring the error message must mention, and the
  // line number the error must be pinned to.
  struct Case {
    const char *Name;
    const char *Input;
    const char *ErrorContains;
    const char *AtLine;
  };
  const Case Cases[] = {
      {"negative thread id", "read -1 0 0\n", "'-1'", "line 1"},
      {"hex id", "write 0x2 0 0\n", "'0x2'", "line 1"},
      {"id over 32 bits", "write 4294967296 0 0\n", "'4294967296'",
       "line 1"},
      {"huge id", "acq 99999999999999999999 1\n", "'99999999999999999999'",
       "line 1"},
      {"trailing junk", "read 1 2 0 junk\n", "trailing token 'junk'",
       "line 1"},
      {"missing operand", "alloc 1 2\n", "missing <fieldcount>", "line 1"},
      {"term with extra", "term 1 2\n", "trailing token", "line 1"},
      {"fork self", "fork 1 1\n", "cannot fork itself", "line 1"},
      {"join self", "join 2 2\n", "cannot join itself", "line 1"},
      {"fork main", "fork 1 0\n", "implicit main", "line 1"},
      {"duplicate fork", "fork 0 1\nfork 0 2\nfork 2 1\n",
       "already forked", "line 3"},
      {"commit missing R", "commit 1 1:0 W\n", "expects 'R'", "line 1"},
      {"commit missing W", "commit 1 R 1:0\n", "missing the 'W'", "line 1"},
      {"commit duplicate W", "commit 1 R W W\n", "duplicate 'W'", "line 1"},
      {"commit bad var", "commit 1 R 1-0 W\n", "bad variable token",
       "line 1"},
      {"commit var no field", "commit 1 R 1: W\n", "bad variable token",
       "line 1"},
      {"commit var out of range", "commit 1 R 1:4294967296 W\n",
       "bad variable token", "line 1"},
      {"commit bad tid", "commit x R W\n", "bad <tid>", "line 1"},
      {"error on later line", "read 0 1 0\nwrite 0 1\n", "missing <field>",
       "line 2"},
  };
  for (const Case &C : Cases) {
    Trace T;
    std::string Error;
    EXPECT_FALSE(parseTrace(C.Input, T, Error)) << C.Name;
    EXPECT_NE(Error.find(C.ErrorContains), std::string::npos)
        << C.Name << ": got '" << Error << "'";
    EXPECT_NE(Error.find(C.AtLine), std::string::npos)
        << C.Name << ": got '" << Error << "'";
  }
}

TEST(TraceIOTest, ForkOfDistinctChildrenIsFine) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("fork 0 1\nfork 0 2\njoin 0 1\njoin 0 2\n", T,
                         Error))
      << Error;
  EXPECT_EQ(T.Actions.size(), 4u);
}

TEST(TraceIOTest, BoundaryIdsRoundTrip) {
  // Largest representable ids must survive a round trip unmangled (the
  // old parser silently truncated anything wider than 32 bits, so a value
  // this large is the interesting boundary).
  Trace T;
  std::string Error;
  ASSERT_TRUE(
      parseTrace("read 4294967295 4294967295 4294967295\n", T, Error))
      << Error;
  ASSERT_EQ(T.Actions.size(), 1u);
  EXPECT_EQ(T.Actions[0].Thread, 0xffffffffu);
  EXPECT_EQ(T.Actions[0].Var.Object, 0xffffffffu);
  EXPECT_EQ(T.Actions[0].Var.Field, 0xffffffffu);
}

TEST(TraceIOTest, EmptyInputIsAnEmptyTrace) {
  Trace T;
  std::string Error;
  ASSERT_TRUE(parseTrace("", T, Error));
  EXPECT_TRUE(T.Actions.empty());
}

TEST(TraceIOTest, StreamingParserMatchesParseTrace) {
  RandomTraceParams P;
  P.Seed = 99;
  Trace Expected = generateRandomTrace(P);
  std::string Text = serializeTrace(Expected);

  // Feed the same text line by line through the streaming parser.
  TraceParser Parser;
  size_t Start = 0;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    ASSERT_TRUE(Parser.feedLine(Text.substr(Start, End - Start)))
        << "line " << Parser.lineNo() << ": " << Parser.error();
    Start = End + 1;
  }
  Trace Streamed = Parser.take();

  Trace Slurped;
  std::string Error;
  ASSERT_TRUE(parseTrace(Text, Slurped, Error)) << Error;
  expectSameTrace(Streamed, Slurped);
  expectSameTrace(Streamed, Expected);
}

TEST(TraceIOTest, RejectedLineLeavesStreamingStateUntouched) {
  // The property --resume-on-error depends on: a failed feedLine must not
  // half-apply the line, so skipping it and continuing yields exactly the
  // trace of the accepted lines.
  TraceParser P;
  ASSERT_TRUE(P.feedLine("fork 0 1"));
  EXPECT_FALSE(P.feedLine("fork 0 1"));       // duplicate fork: rejected
  EXPECT_NE(P.error().find("already forked"), std::string::npos);
  EXPECT_FALSE(P.feedLine("write 1 5"));      // missing field: rejected
  EXPECT_FALSE(P.feedLine("frobnicate 1"));   // unknown kind: rejected
  ASSERT_TRUE(P.feedLine("write 1 5 0"));     // still accepted afterwards
  ASSERT_TRUE(P.feedLine("fork 0 2"));        // fork registry untouched
  ASSERT_TRUE(P.feedLine("term 1"));
  EXPECT_EQ(P.lineNo(), 7u);

  Trace T = P.take();
  ASSERT_EQ(T.Actions.size(), 4u);
  EXPECT_EQ(T.Actions[0].Kind, ActionKind::Fork);
  EXPECT_EQ(T.Actions[1].Kind, ActionKind::Write);
  EXPECT_EQ(T.Actions[2].Kind, ActionKind::Fork);
  EXPECT_EQ(T.Actions[2].Target, 2u);
  EXPECT_EQ(T.Actions[3].Kind, ActionKind::Terminate);
}

TEST(TraceIOTest, StripsCrlfLineEndings) {
  // A stream captured on Windows (or piped through a CRLF-translating
  // transport) must parse identically to its LF form.
  TraceParser P;
  ASSERT_TRUE(P.feedLine("fork 0 1\r"));
  ASSERT_TRUE(P.feedLine("write 1 5 0\r"));
  ASSERT_TRUE(P.feedLine("\r"));           // blank CRLF line is a no-op
  ASSERT_TRUE(P.feedLine("# comment\r"));
  Trace T = P.take();
  ASSERT_EQ(T.Actions.size(), 2u);
  EXPECT_EQ(T.Actions[0].Kind, ActionKind::Fork);
  EXPECT_EQ(T.Actions[1].Kind, ActionKind::Write);
}

TEST(TraceIOTest, RejectsInteriorCarriageReturns) {
  // A '\r' anywhere but line-final would silently glue tokens together in a
  // whitespace-splitting parser; reject it with a precise error instead.
  TraceParser P;
  EXPECT_FALSE(P.feedLine("write 1\r5 0"));
  EXPECT_NE(P.error().find("carriage return"), std::string::npos);
  EXPECT_TRUE(P.feedLine("write 1 5 0")) << "parser stays usable";
}

TEST(TraceIOTest, RejectsAbsurdlyLongLinesWithoutParsing) {
  TraceParser P;
  std::string Huge(TraceParser::MaxLineBytes + 1, 'x');
  EXPECT_FALSE(P.feedLine(Huge));
  EXPECT_NE(P.error().find("line too long"), std::string::npos);
  // Exactly at the bound is still parsed; build a valid line padded with
  // trailing spaces to the limit.
  std::string AtLimit = "write 1 5 0";
  AtLimit.resize(TraceParser::MaxLineBytes, ' ');
  EXPECT_TRUE(P.feedLine(AtLimit)) << P.error();
  // The bound is checked on the raw line, before CRLF stripping — it caps
  // what the parser is willing to scan at all, '\r' included.
  EXPECT_FALSE(P.feedLine(AtLimit + "\r"));
  Trace T = P.take();
  EXPECT_EQ(T.Actions.size(), 1u);
}
