//===- tests/ShmTest.cpp - shared-memory ring transport tests -------------===//
///
/// Covers the same-host shared-memory front end (DESIGN.md §17) end to
/// end, with real process boundaries where the design claims matter:
///
///  - fork()-based cross-process differential: forked GoldClient producers
///    publish binary frames into the segment while the parent serves them;
///    every child's verdicts must match the happens-before oracle, and the
///    same traces fed through the stdio text path must match the same
///    oracle — the transport changes the bytes, never the verdicts.
///  - producer crash mid-frame: a forked producer dies after publishing a
///    continuation slot but not its header slot; the partial frame must be
///    invisible (header-last publication), the dead pid reaped, the ring
///    sanitized and recycled, and a successor claim must resume at the
///    exact frame the server consumed — replayed prefix dup-dropped.
///  - full-ring and service backpressure bounds: a producer facing a full
///    ring never blocks and sheds counted at its buffer cap; a refusing
///    service publishes a retry-after hint through the ring's Control word
///    inside the shared backoff envelope.
///  - the shm failpoints: shm-producer-stall wedges a live producer past
///    the wedge timeout (crash-only reap, then reclaim-with-resume, zero
///    verdict divergence); shm-slot-corrupt kills the session crash-only
///    with the decode error counted and reported to the client.
///
//===----------------------------------------------------------------------===//

#include "client/GoldClient.h"
#include "event/RandomTrace.h"
#include "event/TraceIO.h"
#include "hb/HbOracle.h"
#include "service/Backoff.h"
#include "service/Service.h"
#include "service/shm/ShmRing.h"
#include "service/shm/ShmServer.h"
#include "support/Failpoints.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace gold;
using namespace gold::shm;

namespace {

/// Unique tmpfs-backed segment path, unlinked on scope exit so a red test
/// cannot poison the next run's claim scan with a stale segment.
struct SegPath {
  std::string Path;
  explicit SegPath(const char *Tag) {
    static std::atomic<unsigned> Serial{0};
    Path = "/tmp/gold-shmtest-" + std::to_string(::getpid()) + "-" + Tag +
           "-" + std::to_string(Serial.fetch_add(1)) + ".ring";
  }
  ~SegPath() { ::unlink(Path.c_str()); }
};

Trace smallRandomTrace(uint64_t Seed, unsigned Steps = 40,
                       unsigned Threads = 4) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.StepsPerThread = Steps;
  P.NumThreads = Threads;
  return generateRandomTrace(P);
}

std::set<std::string> oracleVarStrings(const Trace &T) {
  std::set<std::string> Want;
  RaceOracle O(T, TxnSyncSemantics::SharedVariable);
  for (const VarId &V : O.racyVars())
    Want.insert(V.str());
  return Want;
}

/// Publishes a whole trace through the library (commit sets attached the
/// way a real producer attaches them). Returns false if the stream died.
bool publishTrace(client::GoldClient &GC, const Trace &T) {
  for (const Action &A : T.Actions)
    if (!GC.publish(A, A.Kind == ActionKind::Commit ? &T.commitSets(A)
                                                    : nullptr))
      return false;
  return true;
}

/// The stdio leg of the differential: the same trace through the text
/// parser into a fresh service, verdicts projected to variable strings.
std::set<std::string> stdioVerdicts(const Trace &T) {
  DetectionService Svc;
  auto R = Svc.open(1);
  EXPECT_NE(R.S, nullptr);
  std::istringstream In(serializeTrace(T));
  std::string L;
  while (std::getline(In, L)) {
    if (L.empty())
      continue;
    for (;;) {
      FeedResult F = R.S->feedLine(L);
      if (F.St != FeedResult::Status::Backpressure) {
        EXPECT_EQ(F.St, FeedResult::Status::Accepted) << F.Error;
        break;
      }
      Svc.pumpAll();
      Svc.poll();
    }
  }
  Svc.drain();
  std::set<std::string> Got;
  for (const RaceReport &Rep : R.S->takeVerdicts())
    Got.insert(Rep.Var.str());
  Svc.shutdown();
  return Got;
}

/// Maps an existing segment the way a foreign producer process would.
struct MappedSeg {
  int Fd = -1;
  SegView Seg;

  bool map(const std::string &Path) {
    Fd = ::open(Path.c_str(), O_RDWR);
    if (Fd < 0)
      return false;
    struct stat Sb;
    if (::fstat(Fd, &Sb) != 0 || Sb.st_size <= 0)
      return false;
    void *M = ::mmap(nullptr, size_t(Sb.st_size), PROT_READ | PROT_WRITE,
                     MAP_SHARED, Fd, 0);
    if (M == MAP_FAILED)
      return false;
    Seg.Base = static_cast<unsigned char *>(M);
    Seg.Bytes = size_t(Sb.st_size);
    return Seg.valid();
  }
  ~MappedSeg() {
    if (Seg.Base)
      ::munmap(Seg.Base, Seg.Bytes);
    if (Fd >= 0)
      ::close(Fd);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Cross-process differential
//===----------------------------------------------------------------------===//

TEST(ShmTest, ForkedProducersMatchOracleAndStdioPath) {
  SegPath P("diff");
  constexpr unsigned Clients = 3;

  ServiceConfig SC;
  DetectionService Svc(SC);
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = Clients + 1;
  C.SlotsPerRing = 256;
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;

  std::vector<Trace> Traces;
  for (unsigned I = 0; I != Clients; ++I)
    Traces.push_back(smallRandomTrace(900 + I));

  // Children publish over the segment and diff their delivered verdicts
  // against the oracle themselves; the exit status is the verdict on the
  // verdicts. _exit keeps gtest's atexit machinery out of the children.
  std::vector<pid_t> Kids;
  for (unsigned I = 0; I != Clients; ++I) {
    pid_t Kid = ::fork();
    ASSERT_GE(Kid, 0);
    if (Kid == 0) {
      client::GoldClientConfig CC;
      CC.ClientId = I + 1;
      CC.ShmPath = P.Path;
      CC.ShmClaimTimeoutNanos = 10ull * 1000000000;
      CC.BufferCapActions = Traces[I].Actions.size() + 8;
      client::GoldClient GC(CC);
      std::string E;
      if (!GC.connect(E))
        ::_exit(2);
      if (!publishTrace(GC, Traces[I]))
        ::_exit(3);
      std::vector<std::string> Vars;
      if (!GC.closeAndCollect(Vars, E))
        ::_exit(4);
      std::set<std::string> Got(Vars.begin(), Vars.end());
      ::_exit(Got == oracleVarStrings(Traces[I]) ? 0 : 1);
    }
    Kids.push_back(Kid);
  }

  std::atomic<bool> Stop{false};
  std::thread Loop([&] { Shm.runLoop(Stop, 1); });
  for (pid_t Kid : Kids) {
    int Status = -1;
    ASSERT_EQ(::waitpid(Kid, &Status, 0), Kid);
    ASSERT_TRUE(WIFEXITED(Status));
    EXPECT_EQ(WEXITSTATUS(Status), 0)
        << "child verdicts diverged (2=connect 3=publish 4=close 1=diff)";
  }
  Stop.store(true);
  Loop.join();
  Shm.drainAndStop();
  Svc.shutdown();

  size_t TotalActions = 0;
  for (const Trace &T : Traces)
    TotalActions += T.Actions.size();
  ShmStats St = Shm.stats();
  EXPECT_EQ(St.Claims, Clients);
  EXPECT_EQ(St.ClosesServed, Clients);
  EXPECT_EQ(St.FramesIn, TotalActions);
  EXPECT_EQ(St.DecodeErrors, 0u);
  EXPECT_EQ(St.SeqViolations, 0u);
  EXPECT_EQ(St.DupFrames, 0u);
  EXPECT_GE(St.SlotsIn, St.FramesIn); // commits carry continuation slots

  // The stdio leg: same traces, text parse, same oracle. Equality of both
  // legs against one oracle is the byte-exact transport differential.
  for (const Trace &T : Traces)
    EXPECT_EQ(stdioVerdicts(T), oracleVarStrings(T));
}

//===----------------------------------------------------------------------===//
// Crash mid-frame, reap, recycle, resume
//===----------------------------------------------------------------------===//

TEST(ShmTest, ProducerCrashMidFrameIsInvisibleAndSuccessorResumes) {
  SegPath P("crash");
  ServiceConfig SC;
  DetectionService Svc(SC);
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = 2;
  C.SlotsPerRing = 64;
  // Reaping in this test is pid-death-driven; keep the wedge timer out of
  // the way so a slow CI box cannot turn it into a different reap path.
  C.WedgeTimeoutNanos = 60ull * 1000000000;
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;

  // The stream both incarnations replay: fork, two conflicting writes.
  const uint64_t Cid = 7;
  std::vector<Action> Stream;
  {
    Action A;
    A.Kind = ActionKind::Fork;
    A.Thread = 0;
    A.Target = 1;
    Stream.push_back(A);
    A = Action();
    A.Kind = ActionKind::Write;
    A.Thread = 0;
    A.Var = VarId{5, 0};
    Stream.push_back(A);
    A = Action();
    A.Kind = ActionKind::Write;
    A.Thread = 1;
    A.Var = VarId{5, 0};
    Stream.push_back(A);
  }

  // First incarnation: a bare-protocol producer (the library would not let
  // us die mid-frame on purpose). It claims a ring, publishes the first
  // two frames, publishes the CONTINUATION slot of a multi-slot commit
  // frame but never its header slot, and dies.
  pid_t Kid = ::fork();
  ASSERT_GE(Kid, 0);
  if (Kid == 0) {
    MappedSeg M;
    if (!M.map(P.Path))
      ::_exit(10);
    ShmRingHdr *R = nullptr;
    uint32_t Ring = 0;
    for (uint32_t I = 0; I != M.Seg.hdr()->RingCount && !R; ++I) {
      uint32_t Exp = static_cast<uint32_t>(RingState::Free);
      if (M.Seg.ring(I)->State.compare_exchange_strong(
              Exp, static_cast<uint32_t>(RingState::Claimed),
              std::memory_order_acq_rel)) {
        R = M.Seg.ring(I);
        Ring = I;
      }
    }
    if (!R)
      ::_exit(11);
    R->ClientId.store(Cid, std::memory_order_release);
    R->ClientPid.store(uint32_t(::getpid()), std::memory_order_release);
    R->Priority.store(1, std::memory_order_release);
    R->Heartbeat.store(1, std::memory_order_release);
    for (unsigned Spin = 0;; ++Spin) {
      uint32_t S = R->State.load(std::memory_order_acquire);
      if (S == static_cast<uint32_t>(RingState::Ready))
        break;
      if (S == static_cast<uint32_t>(RingState::Refused) || Spin > 500000)
        ::_exit(12);
      ::usleep(20);
    }
    ShmSlot *Slots = M.Seg.slots(Ring);
    const uint32_t Mask = M.Seg.mask();
    for (uint64_t Seq = 0; Seq != 2; ++Seq) {
      FrameHead H;
      encodeHead(H, Stream[Seq], nullptr, Seq);
      ShmSlot &Slot = Slots[Seq & Mask];
      if (Slot.Seq.load(std::memory_order_acquire) != Seq)
        ::_exit(13);
      std::memcpy(Slot.Payload, &H, sizeof(H));
      Slot.Seq.store(Seq + 1, std::memory_order_release);
    }
    // A 2-slot frame would sit at positions 2 (header) and 3
    // (continuation). Publish ONLY the continuation — the crash window the
    // header-last protocol exists for — then die without Closing.
    Slots[3 & Mask].Seq.store(4, std::memory_order_release);
    ::_exit(0);
  }

  // Serve the claim and the child's two complete frames while it runs —
  // the claim handshake needs this thread — then reap the child, then keep
  // serving until the ring is reaped and recycled.
  int Status = -1;
  auto WaitDeadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  for (;;) {
    pid_t Got = ::waitpid(Kid, &Status, WNOHANG);
    ASSERT_GE(Got, 0);
    if (Got == Kid)
      break;
    ASSERT_LT(std::chrono::steady_clock::now(), WaitDeadline)
        << "bare producer never exited";
    Shm.pollOnce(1);
  }
  ASSERT_TRUE(WIFEXITED(Status));
  ASSERT_EQ(WEXITSTATUS(Status), 0) << "bare producer failed";
  auto DeadlineAt = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (Shm.stats().RingsRecycled == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), DeadlineAt)
        << "ring never recycled after producer death";
    Shm.pollOnce(1);
  }
  {
    ShmStats St = Shm.stats();
    EXPECT_EQ(St.FramesIn, 2u);      // the partial frame stayed invisible
    EXPECT_EQ(St.DecodeErrors, 0u);  // ...and never decoded as garbage
    EXPECT_EQ(St.ProducersReaped, 1u);
  }

  // Second incarnation: the real library, same client id, replaying the
  // whole stream (what a reincarnated producer does). The server hands it
  // Resume=Acked=2, so the library prunes the replayed prefix before it
  // ever reaches the wire — only the crashed frame is actually resent.
  client::GoldClientConfig CC;
  CC.ClientId = Cid;
  CC.ShmPath = P.Path;
  CC.ShmClaimTimeoutNanos = 10ull * 1000000000;
  client::GoldClient GC(CC);
  std::atomic<bool> Stop{false};
  std::thread Loop([&] { Shm.runLoop(Stop, 1); });
  ASSERT_TRUE(GC.connect(Err)) << Err;
  for (const Action &A : Stream)
    ASSERT_TRUE(GC.publish(A));
  std::vector<std::string> Vars;
  ASSERT_TRUE(GC.closeAndCollect(Vars, Err)) << Err;
  Stop.store(true);
  Loop.join();
  Shm.drainAndStop();
  Svc.shutdown();

  // The session survived the crash: the two writes race exactly once.
  EXPECT_EQ(std::set<std::string>(Vars.begin(), Vars.end()),
            (std::set<std::string>{"o5.f0"}));
  ShmStats St = Shm.stats();
  EXPECT_EQ(St.Resumes, 1u);
  EXPECT_EQ(St.FramesIn, 3u); // 2 before the crash + 1 new from the resume
  EXPECT_EQ(St.DupFrames, 0u); // the prefix was pruned, not retransmitted
  EXPECT_EQ(St.SeqViolations, 0u);
}

//===----------------------------------------------------------------------===//
// Backpressure bounds
//===----------------------------------------------------------------------===//

TEST(ShmTest, FullRingNeverBlocksProducerAndShedsAtBufferCap) {
  SegPath P("full");
  DetectionService Svc;
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = 1;
  C.SlotsPerRing = 8; // smallest legal ring
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;

  client::GoldClientConfig CC;
  CC.ClientId = 1;
  CC.ShmPath = P.Path;
  CC.BufferCapActions = 16;
  client::GoldClient GC(CC);

  // Serve exactly the claim, then stop consuming: the producer now faces a
  // ring that will never drain.
  std::thread Claim([&] {
    auto DeadlineAt =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (Shm.stats().Claims == 0 &&
           std::chrono::steady_clock::now() < DeadlineAt)
      Shm.pollOnce(1);
  });
  ASSERT_TRUE(GC.connect(Err)) << Err;
  Claim.join();
  ASSERT_EQ(Shm.stats().Claims, 1u);

  Action W;
  W.Kind = ActionKind::Write;
  W.Thread = 0;
  W.Var = VarId{1, 0};
  unsigned Accepted = 0, Shed = 0;
  for (unsigned I = 0; I != 64; ++I)
    (GC.publish(W) ? Accepted : Shed)++;

  // publish() returned every time (no blocking poll loop to starve), the
  // ring bounded the frames in flight, and everything past the replay
  // buffer was shed and counted — never silently queued.
  const client::GoldClientStats &St = GC.stats();
  EXPECT_GT(Shed, 0u);
  EXPECT_EQ(St.Shed, Shed);
  EXPECT_EQ(St.Published, Accepted);
  EXPECT_LE(St.FramesOut, C.SlotsPerRing);
  EXPECT_EQ(St.Published, 64u - Shed);

  // Resume serving: everything admitted must drain and close cleanly.
  std::atomic<bool> Stop{false};
  std::thread Loop([&] { Shm.runLoop(Stop, 1); });
  std::vector<std::string> Vars;
  ASSERT_TRUE(GC.closeAndCollect(Vars, Err)) << Err;
  Stop.store(true);
  Loop.join();
  Shm.drainAndStop();
  Svc.shutdown();
  EXPECT_EQ(Shm.stats().FramesIn, Accepted);
}

TEST(ShmTest, ServiceRefusalPublishesControlWordInsideBackoffEnvelope) {
  SegPath P("bp");
  ServiceConfig SC;
  SC.RingCapacity = 8; // tiny ingest ring: refusals come fast
  DetectionService Svc(SC);
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = 1;
  C.SlotsPerRing = 64;
  C.InlinePump = false; // the test owns the pump: refusals must escalate
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;

  client::GoldClientConfig CC;
  CC.ClientId = 1;
  CC.ShmPath = P.Path;
  client::GoldClient GC(CC);
  std::thread Claim([&] {
    auto DeadlineAt =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (Shm.stats().Claims == 0 &&
           std::chrono::steady_clock::now() < DeadlineAt)
      Shm.pollOnce(1);
  });
  ASSERT_TRUE(GC.connect(Err)) << Err;
  Claim.join();

  Action W;
  W.Kind = ActionKind::Write;
  W.Thread = 0;
  W.Var = VarId{1, 0};
  for (unsigned I = 0; I != 32; ++I)
    ASSERT_TRUE(GC.publish(W));
  ASSERT_TRUE(GC.flush(Err)) << Err;

  // One unpumped poll round: the service's ring fills, feedFrame refuses,
  // and the server writes the jittered retry-after into the Control word.
  auto DeadlineAt = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (Shm.stats().BackpressureWrites == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), DeadlineAt)
        << "service never refused despite an unpumped 8-entry ring";
    Shm.pollOnce(0);
  }
  ShmStats Mid = Shm.stats();
  EXPECT_LT(Mid.FramesIn, 32u); // the refused frame stayed in the ring

  MappedSeg M;
  ASSERT_TRUE(M.map(P.Path));
  uint64_t Hint = M.Seg.ring(0)->Control.load(std::memory_order_acquire);
  ASSERT_NE(Hint, 0u);
  // Every surface derives its hint from backoffNanos, so it must sit
  // inside the envelope of SOME attempt of the shared schedule (the same
  // assertion NetTest makes about `retry-after-ns=` replies).
  uint64_t Lo0, Hi0, LoMax, HiMax;
  backoffBoundsNanos(SC.BackoffBaseNanos, 0, SC.BackoffMaxNanos, Lo0, Hi0);
  backoffBoundsNanos(SC.BackoffBaseNanos, 16, SC.BackoffMaxNanos, LoMax,
                     HiMax);
  EXPECT_GE(Hint, Lo0);
  EXPECT_LE(Hint, HiMax);

  // Recovery: pump the service between polls and the stream settles; the
  // Control word is cleared with the first frame accepted afterwards.
  while (Shm.stats().FramesIn != 32) {
    ASSERT_LT(std::chrono::steady_clock::now(), DeadlineAt)
        << "stream never settled after pumping resumed";
    Svc.pumpAll();
    Svc.poll();
    Shm.pollOnce(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(M.Seg.ring(0)->Control.load(std::memory_order_acquire), 0u);
  Shm.drainAndStop();
  Svc.shutdown();
}

//===----------------------------------------------------------------------===//
// Failpoints
//===----------------------------------------------------------------------===//

TEST(ShmTest, StalledProducerIsWedgeReapedAndResumesWithoutDivergence) {
  // The shm-producer-stall failpoint makes the producer skip its heartbeat
  // and stall past the (shortened) wedge timeout: the server must reap the
  // live-pid producer, the library must reclaim a fresh ring, and the
  // delivered verdicts must still match the oracle exactly.
  FailpointConfig FC;
  FC.Seed = 41;
  FC.rate(Failpoint::ShmProducerStall, 20000);
  FC.StallMicros = 30000; // each stall outlives the wedge timeout
  FailpointScope Scope(FC);

  SegPath P("stall");
  DetectionService Svc;
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = 4;
  C.SlotsPerRing = 256;
  C.WedgeTimeoutNanos = 5ull * 1000000; // 5ms: stalls become wedge reaps
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;

  Trace T = smallRandomTrace(4242, /*Steps=*/100);
  client::GoldClientConfig CC;
  CC.ClientId = 1;
  CC.ShmPath = P.Path;
  CC.ShmClaimTimeoutNanos = 10ull * 1000000000;
  CC.BufferCapActions = T.Actions.size() + 8; // shed would skew the diff
  CC.OpTimeoutNanos = 120ull * 1000000000;
  client::GoldClient GC(CC);

  std::atomic<bool> Stop{false};
  std::thread Loop([&] { Shm.runLoop(Stop, 1); });
  ASSERT_TRUE(GC.connect(Err)) << Err;
  ASSERT_TRUE(publishTrace(GC, T));
  std::vector<std::string> Vars;
  ASSERT_TRUE(GC.closeAndCollect(Vars, Err)) << Err;
  Stop.store(true);
  Loop.join();
  Shm.drainAndStop();
  Svc.shutdown();

  EXPECT_EQ(std::set<std::string>(Vars.begin(), Vars.end()),
            oracleVarStrings(T));
  ShmStats St = Shm.stats();
  EXPECT_GE(St.ProducersWedged, 1u) << "stall failpoint never wedged";
  EXPECT_GE(St.Resumes, 1u);
  EXPECT_EQ(St.SeqViolations, 0u);
  EXPECT_EQ(St.DecodeErrors, 0u);
  const client::GoldClientStats &CSt = GC.stats();
  EXPECT_GE(CSt.ProducerStalls, 1u);
  EXPECT_GE(CSt.Reconnects, 1u);
}

TEST(ShmTest, CorruptSlotKillsSessionCrashOnlyAndIsCounted) {
  // shm-slot-corrupt scribbles the op byte before publication; the server
  // must kill the session (silent frame-skipping would be an unaccounted
  // verdict divergence), count the decode error, and tell the client why.
  FailpointConfig FC;
  FC.Seed = 7;
  FC.rate(Failpoint::ShmSlotCorrupt, 1000000); // every frame
  FailpointScope Scope(FC);

  SegPath P("corrupt");
  DetectionService Svc;
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = 1;
  C.SlotsPerRing = 64;
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;

  client::GoldClientConfig CC;
  CC.ClientId = 1;
  CC.ShmPath = P.Path;
  CC.ShmClaimTimeoutNanos = 10ull * 1000000000;
  client::GoldClient GC(CC);

  std::atomic<bool> Stop{false};
  std::thread Loop([&] { Shm.runLoop(Stop, 1); });
  ASSERT_TRUE(GC.connect(Err)) << Err;
  Action W;
  W.Kind = ActionKind::Write;
  W.Thread = 0;
  W.Var = VarId{1, 0};
  for (unsigned I = 0; I != 8; ++I)
    if (!GC.publish(W))
      break; // death may surface here or at close; either is correct
  std::vector<std::string> Vars;
  bool Ok = GC.closeAndCollect(Vars, Err);
  Stop.store(true);
  Loop.join();
  Shm.drainAndStop();
  Svc.shutdown();

  EXPECT_FALSE(Ok);
  EXPECT_NE(Err.find("killed"), std::string::npos) << Err;
  ShmStats St = Shm.stats();
  EXPECT_GE(St.DecodeErrors, 1u);
  EXPECT_GE(GC.stats().SlotCorrupts, 1u);
}

//===----------------------------------------------------------------------===//
// Drain refuses claims
//===----------------------------------------------------------------------===//

TEST(ShmTest, DrainingSegmentRefusesNewClaims) {
  SegPath P("drain");
  DetectionService Svc;
  ShmConfig C;
  C.Path = P.Path;
  C.Rings = 2;
  ShmServer Shm(Svc, C);
  std::string Err;
  ASSERT_TRUE(Shm.start(Err)) << Err;
  Shm.drainAndStop();
  Svc.shutdown();

  client::GoldClientConfig CC;
  CC.ClientId = 1;
  CC.ShmPath = P.Path;
  CC.ShmClaimTimeoutNanos = 500ull * 1000000;
  client::GoldClient GC(CC);
  EXPECT_FALSE(GC.connect(Err));
  EXPECT_NE(Err.find("draining"), std::string::npos) << Err;
}
