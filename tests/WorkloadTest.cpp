//===- tests/WorkloadTest.cpp - benchmark workload integration tests ------===//
///
/// End-to-end checks of the Table 1/2/3 workloads: every benchmark is
/// race-free under the Goldilocks engine (they are correct programs),
/// computes its expected result, and behaves identically with static
/// pre-elimination applied (Chord and RccJava results are sound).
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "workloads/Workload.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace gold;

namespace {

struct NamedWorkload {
  const char *Name;
  Workload (*Make)();
};

Workload smallColt() { return makeColt(3, WorkloadScale{1}); }
Workload smallHedc() { return makeHedc(3, WorkloadScale{1}); }
Workload smallLufact() { return makeLufact(3, WorkloadScale{1}); }
Workload smallMoldyn() { return makeMoldyn(3, WorkloadScale{1}); }
Workload smallMontecarlo() { return makeMontecarlo(3, WorkloadScale{1}); }
Workload smallPhilo() { return makePhilo(4, WorkloadScale{1}); }
Workload smallRaytracer() { return makeRaytracer(3, WorkloadScale{1}); }
Workload smallSeries() { return makeSeries(3, WorkloadScale{1}); }
Workload smallSor() { return makeSor(3, WorkloadScale{1}); }
Workload smallSor2() { return makeSor2(3, WorkloadScale{1}); }
Workload smallTsp() { return makeTsp(3, WorkloadScale{1}); }
Workload smallMultiset() { return makeMultiset(4, 12, 10); }

const NamedWorkload AllWorkloads[] = {
    {"colt", smallColt},           {"hedc", smallHedc},
    {"lufact", smallLufact},       {"moldyn", smallMoldyn},
    {"montecarlo", smallMontecarlo}, {"philo", smallPhilo},
    {"raytracer", smallRaytracer}, {"series", smallSeries},
    {"sor", smallSor},             {"sor2", smallSor2},
    {"tsp", smallTsp},             {"multiset", smallMultiset},
};

class WorkloadTest : public ::testing::TestWithParam<NamedWorkload> {};

int64_t runAndCheck(const Workload &W, RaceDetector *D,
                    std::vector<RaceReport> *RacesOut = nullptr) {
  VmConfig Cfg;
  Cfg.Detector = D;
  Vm V(W.Prog, Cfg);
  EXPECT_EQ(V.run(), 0) << W.Name;
  EXPECT_TRUE(V.uncaught().empty()) << W.Name;
  if (RacesOut)
    *RacesOut = V.raceLog();
  return static_cast<int64_t>(V.global(W.ResultGlobal));
}

} // namespace

TEST_P(WorkloadTest, UninstrumentedComputesExpectedResult) {
  Workload W = GetParam().Make();
  int64_t R = runAndCheck(W, nullptr);
  if (W.HasExpected) {
    EXPECT_EQ(R, W.Expected) << W.Name;
  }
}

TEST_P(WorkloadTest, RaceFreeUnderGoldilocks) {
  Workload W = GetParam().Make();
  GoldilocksDetector D;
  std::vector<RaceReport> Races;
  int64_t R = runAndCheck(W, &D, &Races);
  EXPECT_TRUE(Races.empty()) << W.Name << ": " << Races[0].str();
  if (W.HasExpected) {
    EXPECT_EQ(R, W.Expected) << W.Name;
  }
}

TEST_P(WorkloadTest, ChordPreEliminationPreservesBehaviour) {
  Workload W = GetParam().Make();
  Program Annotated = W.Prog;
  applyStaticResult(Annotated, runChordAnalysis(W.Prog));
  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(Annotated, Cfg);
  EXPECT_EQ(V.run(), 0) << W.Name;
  EXPECT_TRUE(V.raceLog().empty()) << W.Name;
  if (W.HasExpected) {
    EXPECT_EQ(static_cast<int64_t>(V.global(W.ResultGlobal)), W.Expected);
  }
  EXPECT_LE(V.stats().CheckedAccesses, V.stats().DataAccesses);
}

TEST_P(WorkloadTest, RccJavaPreEliminationPreservesBehaviour) {
  Workload W = GetParam().Make();
  Program Annotated = W.Prog;
  applyStaticResult(Annotated, runRccJavaAnalysis(W.Prog, W.Rcc));
  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(Annotated, Cfg);
  EXPECT_EQ(V.run(), 0) << W.Name;
  EXPECT_TRUE(V.raceLog().empty()) << W.Name;
  if (W.HasExpected) {
    EXPECT_EQ(static_cast<int64_t>(V.global(W.ResultGlobal)), W.Expected);
  }
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadTest, ::testing::ValuesIn(AllWorkloads),
                         [](const auto &Info) {
                           return std::string(Info.param.Name);
                         });

TEST(WorkloadSuiteTest, StandardSuiteBuilds) {
  auto Suite = standardSuite(WorkloadScale{1});
  EXPECT_EQ(Suite.size(), 11u);
  for (const Workload &W : Suite) {
    EXPECT_FALSE(W.Name.empty());
    EXPECT_TRUE(W.Prog.validate().empty()) << W.Name;
    EXPECT_GE(W.Threads, 5u) << W.Name;
  }
}

TEST(WorkloadSuiteTest, MultisetTransactionsActuallyCommit) {
  Workload W = makeMultiset(4, 12, 10);
  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(W.Prog, Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_GT(V.stats().TxnCommits, 0u);
  EXPECT_GT(V.stats().TxnAccesses, 0u);
  EXPECT_EQ(static_cast<int64_t>(V.global(W.ResultGlobal)), W.Expected);
  EXPECT_TRUE(V.raceLog().empty()) << V.raceLog()[0].str();
}

TEST(WorkloadSuiteTest, BarrierWorkloadsGenerateVolatileTraffic) {
  for (auto Make : {smallMoldyn, smallSor2}) {
    Workload W = Make();
    GoldilocksDetector D;
    VmConfig Cfg;
    Cfg.Detector = &D;
    Vm V(W.Prog, Cfg);
    EXPECT_EQ(V.run(), 0);
    EXPECT_GT(V.stats().VolatileAccesses, 0u) << W.Name;
  }
}

TEST(WorkloadSuiteTest, RccAnnotationsReduceCheckedAccesses) {
  // For barrier workloads, the RccJava annotations must eliminate strictly
  // more accesses than Chord (the moldyn/raytracer/sor2 effect).
  for (auto Make : {smallMoldyn, smallRaytracer, smallSor2}) {
    Workload W = Make();
    auto Run = [&](const StaticRaceResult &R) {
      Program Annotated = W.Prog;
      applyStaticResult(Annotated, R);
      GoldilocksDetector D;
      VmConfig Cfg;
      Cfg.Detector = &D;
      Vm V(Annotated, Cfg);
      V.run();
      return V.stats().CheckedAccesses;
    };
    uint64_t Chord = Run(runChordAnalysis(W.Prog));
    uint64_t Rcc = Run(runRccJavaAnalysis(W.Prog, W.Rcc));
    EXPECT_LT(Rcc, Chord) << W.Name;
  }
}
