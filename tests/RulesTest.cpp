//===- tests/RulesTest.cpp - Figure 5 rule unit tests ---------------------===//

#include "goldilocks/Rules.h"

#include <gtest/gtest.h>

using namespace gold;

namespace {

SyncEvent mkEvent(ActionKind K, ThreadId T, VarId V = VarId{},
                  ThreadId Target = NoThread) {
  SyncEvent E;
  E.Kind = K;
  E.Thread = T;
  E.Var = V;
  E.Target = Target;
  return E;
}

VarId TheVar{7, 0};

} // namespace

TEST(RulesTest, AcquireAddsThreadWhenLockPresent) {
  Lockset LS;
  LS.insert(LocksetElem::lock(3));
  applyLocksetRule(LS, mkEvent(ActionKind::Acquire, 5, lockVar(3)), TheVar);
  EXPECT_TRUE(LS.containsThread(5));
}

TEST(RulesTest, AcquireNoopWhenLockAbsent) {
  Lockset LS;
  LS.insert(LocksetElem::lock(4));
  applyLocksetRule(LS, mkEvent(ActionKind::Acquire, 5, lockVar(3)), TheVar);
  EXPECT_FALSE(LS.containsThread(5));
}

TEST(RulesTest, ReleaseAddsLockWhenThreadPresent) {
  Lockset LS;
  LS.insert(LocksetElem::thread(5));
  applyLocksetRule(LS, mkEvent(ActionKind::Release, 5, lockVar(3)), TheVar);
  EXPECT_TRUE(LS.contains(LocksetElem::lock(3)));
}

TEST(RulesTest, ReleaseByOtherThreadIsNoop) {
  Lockset LS;
  LS.insert(LocksetElem::thread(5));
  applyLocksetRule(LS, mkEvent(ActionKind::Release, 6, lockVar(3)), TheVar);
  EXPECT_FALSE(LS.contains(LocksetElem::lock(3)));
}

TEST(RulesTest, VolatileWriteThenReadTransfersOwnership) {
  Lockset LS;
  LS.insert(LocksetElem::thread(1));
  VarId Flag{2, 9};
  applyLocksetRule(LS, mkEvent(ActionKind::VolatileWrite, 1, Flag), TheVar);
  EXPECT_TRUE(LS.contains(LocksetElem::volVar(Flag)));
  applyLocksetRule(LS, mkEvent(ActionKind::VolatileRead, 2, Flag), TheVar);
  EXPECT_TRUE(LS.containsThread(2));
}

TEST(RulesTest, ForkAddsChildWhenParentPresent) {
  Lockset LS;
  LS.insert(LocksetElem::thread(1));
  applyLocksetRule(LS, mkEvent(ActionKind::Fork, 1, VarId{}, 7), TheVar);
  EXPECT_TRUE(LS.containsThread(7));
}

TEST(RulesTest, JoinAddsJoinerWhenChildPresent) {
  Lockset LS;
  LS.insert(LocksetElem::thread(7));
  applyLocksetRule(LS, mkEvent(ActionKind::Join, 1, VarId{}, 7), TheVar);
  EXPECT_TRUE(LS.containsThread(1));
}

TEST(RulesTest, JoinOfUnrelatedChildIsNoop) {
  Lockset LS;
  LS.insert(LocksetElem::thread(8));
  applyLocksetRule(LS, mkEvent(ActionKind::Join, 1, VarId{}, 7), TheVar);
  EXPECT_FALSE(LS.containsThread(1));
}

TEST(RulesTest, CommitAddsCommitterOnDataVarIntersection) {
  Lockset LS;
  VarId Shared{9, 1};
  LS.insert(LocksetElem::dataVar(Shared));
  CommitSets CS;
  CS.Reads = {Shared};
  SyncEvent E = mkEvent(ActionKind::Commit, 4);
  E.Commit = &CS;
  applyLocksetRule(LS, E, TheVar);
  EXPECT_TRUE(LS.containsThread(4));
}

TEST(RulesTest, CommitPublishesReadWriteSets) {
  Lockset LS;
  LS.insert(LocksetElem::thread(4));
  CommitSets CS;
  CS.Reads = {VarId{9, 1}};
  CS.Writes = {VarId{9, 2}};
  SyncEvent E = mkEvent(ActionKind::Commit, 4);
  E.Commit = &CS;
  applyLocksetRule(LS, E, TheVar);
  EXPECT_TRUE(LS.contains(LocksetElem::dataVar(VarId{9, 1})));
  EXPECT_TRUE(LS.contains(LocksetElem::dataVar(VarId{9, 2})));
}

TEST(RulesTest, CommitByNonOwnerWithNoIntersectionIsNoop) {
  Lockset LS;
  LS.insert(LocksetElem::thread(1));
  CommitSets CS;
  CS.Reads = {VarId{9, 1}};
  SyncEvent E = mkEvent(ActionKind::Commit, 4);
  E.Commit = &CS;
  applyLocksetRule(LS, E, TheVar);
  EXPECT_EQ(LS.size(), 1u);
}

TEST(RulesTest, CommitTouchingTheVariableKeepsForeignOwnership) {
  // A record that predates the commit and belongs to a different thread's
  // access keeps its accumulated ordering even when the commit's write set
  // contains the record's own variable: rule 9's {t, TL} ownership reset is
  // install-time (the committing access's own record), never applied while
  // a foreign record's lockset is advanced across the commit event. If the
  // committer does not synchronize with the record (no data-var
  // intersection, committer not an owner) the commit is a no-op for it —
  // the regression here was a plain access silently ordered against a
  // later unrelated transaction.
  Lockset LS;
  LS.insert(LocksetElem::thread(1));
  LS.insert(LocksetElem::lock(2));
  CommitSets CS;
  CS.Writes = {TheVar, VarId{9, 9}};
  SyncEvent E = mkEvent(ActionKind::Commit, 4);
  E.Commit = &CS;
  applyLocksetRule(LS, E, TheVar);
  EXPECT_FALSE(LS.containsThread(4));
  EXPECT_FALSE(LS.containsTxnLock());
  EXPECT_TRUE(LS.containsThread(1));
  EXPECT_TRUE(LS.contains(LocksetElem::lock(2)));
  EXPECT_EQ(LS.size(), 2u);
}

TEST(RulesTest, TerminateHasNoLocksetEffect) {
  Lockset LS;
  LS.insert(LocksetElem::thread(1));
  applyLocksetRule(LS, mkEvent(ActionKind::Terminate, 1), TheVar);
  EXPECT_EQ(LS.size(), 1u);
}

TEST(RulesTest, FromActionCarriesCommitSets) {
  TraceBuilder B;
  B.commit(2, {VarId{1, 0}}, {VarId{1, 1}});
  Trace T = B.take();
  SyncEvent E = SyncEvent::fromAction(T.Actions[0], T);
  ASSERT_NE(E.Commit, nullptr);
  EXPECT_TRUE(E.Commit->touches(VarId{1, 0}));
  EXPECT_TRUE(E.Commit->writes(VarId{1, 1}));
}
