//===- tests/ReferenceTest.cpp - eager reference implementation tests -----===//
///
/// Pins the reference implementation to the paper: the exact lockset
/// evolutions of Figure 6 (Example 2) and Figure 7 (Example 3), the race
/// verdicts of Example 4, and the precision idioms of Section 4.
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "event/PaperTraces.h"

#include <gtest/gtest.h>

using namespace gold;
using namespace gold::paper;

namespace {

/// Feeds actions [Begin, End) of T into the detector, returning any races.
std::vector<RaceReport> feed(RaceDetector &D, const Trace &T, size_t Begin,
                             size_t End) {
  Trace Slice;
  Slice.Commits = T.Commits;
  Slice.Actions.assign(T.Actions.begin() + static_cast<ptrdiff_t>(Begin),
                       T.Actions.begin() + static_cast<ptrdiff_t>(End));
  return D.runTrace(Slice);
}

} // namespace

TEST(ReferenceFigure6Test, LocksetEvolutionMatchesPaper) {
  Trace T = paperExample2Trace();
  GoldilocksReferenceDetector D;
  GoldilocksReference &R = D.reference();
  VarId V = oData();

  // Indices: 0 alloc(o), 1 write o.data, 2 acq(ma), 3 write a, 4 rel(ma),
  // 5 acq2(ma), 6 read a, 7 acq2(mb), 8 write b, 9 rel2(mb), 10 rel2(ma),
  // 11 acq3(mb), 12 write o.data, 13 read b, 14 rel3(mb), 15 write o.data.
  EXPECT_TRUE(feed(D, T, 0, 1).empty());
  EXPECT_EQ(R.writeLockset(V), nullptr); // LS(o.data) = ∅ after alloc

  EXPECT_TRUE(feed(D, T, 1, 2).empty()); // first access
  EXPECT_EQ(R.writeLockset(V)->str(), "{T1}");

  EXPECT_TRUE(feed(D, T, 2, 5).empty()); // acq(ma), a=tmp1, rel(ma)
  EXPECT_EQ(R.writeLockset(V)->str(), "{T1, o2.lock}"); // {T1, ma}

  EXPECT_TRUE(feed(D, T, 5, 6).empty()); // T2: acq(ma)
  EXPECT_EQ(R.writeLockset(V)->str(), "{T1, o2.lock, T2}");

  EXPECT_TRUE(feed(D, T, 6, 11).empty()); // ... rel(mb), rel(ma)
  EXPECT_EQ(R.writeLockset(V)->str(), "{T1, o2.lock, T2, o3.lock}");

  // T3: acq(mb) — mb ∈ LS, so T3 becomes an owner.
  EXPECT_TRUE(feed(D, T, 11, 12).empty());
  EXPECT_EQ(R.writeLockset(V)->str(), "{T1, o2.lock, T2, o3.lock, T3}");

  // b.data = 2 by T3: no race, lockset resets to {T3}.
  EXPECT_TRUE(feed(D, T, 12, 13).empty());
  EXPECT_EQ(R.writeLockset(V)->str(), "{T3}");

  // tmp3 = b; rel(mb): T3 ∈ LS so mb is added.
  EXPECT_TRUE(feed(D, T, 13, 15).empty());
  EXPECT_EQ(R.writeLockset(V)->str(), "{T3, o3.lock}");

  // tmp3.data = 3 outside the lock: still owned by T3, no race.
  EXPECT_TRUE(feed(D, T, 15, 16).empty());
  EXPECT_EQ(R.writeLockset(V)->str(), "{T3}");
}

TEST(ReferenceFigure7Test, LocksetEvolutionMatchesPaper) {
  Trace T = paperExample3Trace();
  GoldilocksReferenceDetector D;
  GoldilocksReference &R = D.reference();
  VarId V = oData();

  // Indices: 0 alloc, 1 write o.data, 2 commit T1, 3 commit T2,
  // 4 commit T3, 5 read o.data, 6 write o.data.
  EXPECT_TRUE(feed(D, T, 0, 2).empty());
  EXPECT_EQ(R.writeLockset(V)->str(), "{T1}");

  // T1's commit: T1 ∈ LS, so {o.nxt, &head} are published into LS.
  EXPECT_TRUE(feed(D, T, 2, 3).empty());
  Lockset AfterT1 = *R.writeLockset(V);
  EXPECT_TRUE(AfterT1.containsThread(1));
  EXPECT_TRUE(AfterT1.contains(LocksetElem::dataVar(oNxt())));
  EXPECT_TRUE(AfterT1.contains(LocksetElem::dataVar(head())));
  EXPECT_EQ(AfterT1.size(), 3u);

  // T2's commit touches o.data: after it LS = {T2, TL} ∪ R ∪ W
  // (Figure 7's end_tr line: {TL, T2, &head, o.data, o.nxt}).
  EXPECT_TRUE(feed(D, T, 3, 4).empty());
  Lockset AfterT2 = *R.writeLockset(V);
  EXPECT_TRUE(AfterT2.containsThread(2));
  EXPECT_TRUE(AfterT2.containsTxnLock());
  EXPECT_TRUE(AfterT2.contains(LocksetElem::dataVar(head())));
  EXPECT_TRUE(AfterT2.contains(LocksetElem::dataVar(oData())));
  EXPECT_TRUE(AfterT2.contains(LocksetElem::dataVar(oNxt())));
  EXPECT_FALSE(AfterT2.containsThread(1)); // ownership reset dropped T1
  EXPECT_EQ(AfterT2.size(), 5u);

  // T3's commit shares head and o.nxt with LS, so T3 joins the owners.
  EXPECT_TRUE(feed(D, T, 4, 5).empty());
  EXPECT_TRUE(R.writeLockset(V)->containsThread(3));
  EXPECT_EQ(R.writeLockset(V)->size(), 6u);

  // t3.data++ outside any transaction: race-free, lockset resets to {T3}.
  EXPECT_TRUE(feed(D, T, 5, 7).empty());
  EXPECT_EQ(R.writeLockset(V)->str(), "{T3}");
}

TEST(ReferenceTest, Example4RacesInBothInterleavings) {
  for (bool TxnFirst : {false, true}) {
    GoldilocksReferenceDetector D;
    auto Races = D.runTrace(paperExample4Trace(TxnFirst));
    ASSERT_EQ(Races.size(), 1u) << "TxnFirst=" << TxnFirst;
    EXPECT_EQ(Races[0].Var, (VarId{1, 0})) << "checking.bal";
  }
}

TEST(ReferenceTest, SafeIdiomsReportNothing) {
  for (const Trace &T :
       {idiomVolatileFlagTrace(), idiomForkJoinTrace(), idiomBarrierTrace(),
        idiomIndirectHandoffTrace(), paperExample2Trace(),
        paperExample3Trace()}) {
    GoldilocksReferenceDetector D;
    EXPECT_TRUE(D.runTrace(T).empty());
  }
}

TEST(ReferenceTest, UnsyncRaceIsReportedOnce) {
  GoldilocksReferenceDetector D;
  auto Races = D.runTrace(idiomUnsyncRacyTrace());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_EQ(Races[0].Thread, 2u);
  EXPECT_EQ(Races[0].PriorThread, 1u);
  EXPECT_TRUE(Races[0].IsWrite);
  EXPECT_TRUE(Races[0].PriorIsWrite);
}

TEST(ReferenceTest, ReadSharedThenWriteRaces) {
  TraceBuilder B;
  B.write(1, 1, 0); // T1 writes first
  B.acq(2, 9).rel(2, 9);
  // T1 hands ownership to nobody; T2's read is a race.
  B.read(2, 1, 0);
  GoldilocksReferenceDetector D;
  auto Races = D.runTrace(B.take());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_FALSE(Races[0].IsWrite);
  EXPECT_TRUE(Races[0].PriorIsWrite);
}

TEST(ReferenceTest, ConcurrentReadsThenOrderedWriteIsStillARace) {
  // Reads by two threads, then a write ordered after only one of them.
  TraceBuilder B;
  B.write(0, 1, 0);          // init by T0
  B.fork(0, 1).fork(0, 2);   // both readers ordered after init
  B.read(1, 1, 0);
  B.read(2, 1, 0);
  B.acq(1, 9).rel(1, 9);     // T1 releases a lock
  B.acq(3, 9);               // hmm: T3 never forked — use T1->T3 via lock
  B.rel(3, 9);
  B.write(3, 1, 0);          // ordered after T1's read only: races with T2's
  GoldilocksReferenceDetector D;
  auto Races = D.runTrace(B.take());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_TRUE(Races[0].IsWrite);
  EXPECT_FALSE(Races[0].PriorIsWrite);
  EXPECT_EQ(Races[0].PriorThread, 2u);
}

TEST(ReferenceTest, AllocResetsLocksets) {
  TraceBuilder B;
  B.write(1, 1, 0);
  B.alloc(2, 1, 1);
  B.write(2, 1, 0);
  GoldilocksReferenceDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(ReferenceTest, DisableAfterRaceSuppressesFollowups) {
  TraceBuilder B;
  B.write(1, 1, 0).write(2, 1, 0).write(3, 1, 0).write(1, 1, 0);
  GoldilocksReferenceDetector D;
  EXPECT_EQ(D.runTrace(B.take()).size(), 1u);
}

TEST(ReferenceTest, TxnThenPlainAccessByOtherThreadRaces) {
  TraceBuilder B;
  B.commit(1, {}, {VarId{1, 0}});
  B.write(2, 1, 0);
  GoldilocksReferenceDetector D;
  auto Races = D.runTrace(B.take());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_TRUE(Races[0].PriorXact);
  EXPECT_FALSE(Races[0].Xact);
}

TEST(ReferenceTest, TxnHandoffThroughSharedVariable) {
  // T1 writes x in a txn; T2's txn reads x and writes y; T2 then accesses
  // x outside any txn — safe because T2 owns x after its commit.
  VarId X{1, 0}, Y{1, 1};
  TraceBuilder B;
  B.commit(1, {}, {X});
  B.commit(2, {X}, {Y});
  B.write(2, 1, 0);
  GoldilocksReferenceDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(ReferenceTest, WaitStyleReleaseReacquire) {
  // wait() = release + reacquire; notify carries no lockset effect of its
  // own. Producer/consumer over a lock must be race-free.
  TraceBuilder B;
  B.acq(1, 9).write(1, 1, 0).rel(1, 9); // producer fills
  B.acq(2, 9).read(2, 1, 0).rel(2, 9);  // consumer (post-wait) reads
  GoldilocksReferenceDetector D;
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}
