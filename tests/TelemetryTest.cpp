//===- tests/TelemetryTest.cpp - Observability primitives tests -----------===//
///
/// Unit tests for support/Telemetry.h: log2 histogram bucket boundaries and
/// moments (including a true concurrent-increment exactness check, which is
/// what TSan runs against), the named registry, the generalized event ring
/// and flight recorder, and the Chrome trace-event sink's output format.
///
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/Telemetry.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace gold;

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketOfIsTheBitWidth) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(7), 3u);
  EXPECT_EQ(Histogram::bucketOf(8), 4u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 64u);
}

TEST(HistogramTest, BucketBoundsPartitionTheDomain) {
  // Buckets must tile [0, 2^64) without gaps or overlaps, and bucketOf must
  // agree with the bounds at every edge.
  EXPECT_EQ(Histogram::bucketLo(0), 0u);
  EXPECT_EQ(Histogram::bucketHi(0), 0u);
  EXPECT_EQ(Histogram::bucketLo(1), 1u);
  EXPECT_EQ(Histogram::bucketHi(1), 1u);
  for (unsigned B = 1; B != Histogram::NumBuckets; ++B) {
    EXPECT_EQ(Histogram::bucketLo(B), Histogram::bucketHi(B - 1) + 1)
        << "gap/overlap between buckets " << B - 1 << " and " << B;
    EXPECT_LE(Histogram::bucketLo(B), Histogram::bucketHi(B));
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketLo(B)), B);
    EXPECT_EQ(Histogram::bucketOf(Histogram::bucketHi(B)), B);
  }
  EXPECT_EQ(Histogram::bucketHi(64), ~uint64_t(0));
}

TEST(HistogramTest, RecordUpdatesMomentsAndBuckets) {
  Histogram H;
  for (uint64_t V : {0ull, 1ull, 1ull, 5ull, 6ull, 7ull, 1000ull})
    H.record(V);
  EXPECT_EQ(H.count(), 7u);
  EXPECT_EQ(H.sum(), 0u + 1 + 1 + 5 + 6 + 7 + 1000);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucketCount(0), 1u); // {0}
  EXPECT_EQ(H.bucketCount(1), 2u); // {1, 1}
  EXPECT_EQ(H.bucketCount(3), 3u); // {5, 6, 7}
  EXPECT_EQ(H.bucketCount(10), 1u); // {1000}
  EXPECT_EQ(H.bucketCount(2), 0u);

  HistogramSnapshot S = H.snapshot("walk");
  EXPECT_EQ(S.Name, "walk");
  EXPECT_EQ(S.Count, 7u);
  EXPECT_DOUBLE_EQ(S.mean(), double(S.Sum) / 7.0);
  uint64_t BucketTotal = 0;
  for (const auto &[B, N] : S.Buckets) {
    EXPECT_GT(N, 0u) << "snapshot must only carry non-empty buckets";
    EXPECT_LT(B, Histogram::NumBuckets);
    BucketTotal += N;
  }
  EXPECT_EQ(BucketTotal, S.Count);
}

TEST(HistogramTest, ConcurrentRecordIsExactOnceQuiescent) {
  // The soundness claim behind the relaxed atomics: each cell is
  // independently exact after writers quiesce. 8 threads x 20k records of
  // known values must produce exact count/sum/max and bucket totals.
  Histogram H;
  constexpr unsigned Threads = 8;
  constexpr uint64_t PerThread = 20000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&H, T] {
      for (uint64_t I = 0; I != PerThread; ++I)
        H.record(T); // thread T records its own index, 20k times
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(H.count(), Threads * PerThread);
  EXPECT_EQ(H.sum(), PerThread * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
  EXPECT_EQ(H.max(), 7u);
  EXPECT_EQ(H.bucketCount(0), PerThread);          // value 0
  EXPECT_EQ(H.bucketCount(1), PerThread);          // value 1
  EXPECT_EQ(H.bucketCount(2), 2 * PerThread);      // values 2, 3
  EXPECT_EQ(H.bucketCount(3), 4 * PerThread);      // values 4..7
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(TelemetryRegistryTest, SameNameYieldsSameInstrument) {
  Telemetry Tel(TelemetryLevel::Full);
  Counter &C1 = Tel.counter("appends");
  Counter &C2 = Tel.counter("appends");
  EXPECT_EQ(&C1, &C2);
  C1.add(3);
  C2.add();
  EXPECT_EQ(C1.get(), 4u);

  Histogram &H = Tel.histogram("walk");
  EXPECT_EQ(&H, &Tel.histogram("walk"));
  H.record(5);
  Tel.gauge("cells").set(-12);

  TelemetrySnapshot S = Tel.snapshot();
  EXPECT_EQ(S.Level, TelemetryLevel::Full);
  ASSERT_EQ(S.Counters.size(), 1u);
  EXPECT_EQ(S.Counters[0].first, "appends");
  EXPECT_EQ(S.Counters[0].second, 4u);
  ASSERT_EQ(S.Gauges.size(), 1u);
  EXPECT_EQ(S.Gauges[0].second, -12);
  ASSERT_EQ(S.Histograms.size(), 1u);
  EXPECT_EQ(S.Histograms[0].Count, 1u);
}

TEST(TelemetryRegistryTest, ReferencesSurviveLaterRegistrations) {
  Telemetry Tel;
  Counter &First = Tel.counter("c0");
  for (int I = 1; I != 200; ++I)
    Tel.counter("c" + std::to_string(I));
  First.add(7);
  EXPECT_EQ(Tel.counter("c0").get(), 7u);
}

TEST(TelemetryLevelTest, ParseRoundTrips) {
  TelemetryLevel L;
  ASSERT_TRUE(parseTelemetryLevel("off", L));
  EXPECT_EQ(L, TelemetryLevel::Off);
  ASSERT_TRUE(parseTelemetryLevel("counters", L));
  EXPECT_EQ(L, TelemetryLevel::Counters);
  ASSERT_TRUE(parseTelemetryLevel("full", L));
  EXPECT_EQ(L, TelemetryLevel::Full);
  EXPECT_FALSE(parseTelemetryLevel("verbose", L));
  EXPECT_FALSE(parseTelemetryLevel("", L));
  for (TelemetryLevel X : {TelemetryLevel::Off, TelemetryLevel::Counters,
                           TelemetryLevel::Full}) {
    ASSERT_TRUE(parseTelemetryLevel(telemetryLevelName(X), L));
    EXPECT_EQ(L, X);
  }
}

TEST(TelemetrySnapshotTest, JsonCarriesTheSchemaAndInstruments) {
  Telemetry Tel(TelemetryLevel::Full);
  Tel.counter("races").add(2);
  Tel.histogram("walk").record(9);
  std::string J = Tel.snapshot().json("unit-test");
  EXPECT_NE(J.find("\"schema\":\"gold-metrics-v1\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"source\":\"unit-test\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"races\":2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"walk\""), std::string::npos) << J;
  // Buckets are [lo, hi, count] triples; 9 lands in bucket 4 = [8, 15].
  EXPECT_NE(J.find("[[8,15,1]]"), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// Event ring / flight recorder
//===----------------------------------------------------------------------===//

TEST(EventRingTest, OverwritesOldestAndCountsDrops) {
  EventRing<int> R(4);
  EXPECT_EQ(R.capacity(), 4u);
  for (int I = 0; I != 10; ++I)
    R.push(I);
  EXPECT_EQ(R.total(), 10u);
  EXPECT_EQ(R.dropped(), 6u);
  std::vector<int> S = R.snapshot();
  ASSERT_EQ(S.size(), 4u);
  EXPECT_EQ(S, (std::vector<int>{6, 7, 8, 9})) << "oldest-first, newest kept";
}

TEST(EventRingTest, ZeroCapacityIsClampedNotUndefined) {
  EventRing<int> R(0);
  EXPECT_EQ(R.capacity(), 1u);
  R.push(42);
  ASSERT_EQ(R.snapshot().size(), 1u);
  EXPECT_EQ(R.snapshot()[0], 42);
}

TEST(FlightRecorderTest, SnapshotMergesStripesTimeSorted) {
  FlightRecorder F(/*RingCapacity=*/8, /*Stripes=*/4);
  // Interleave threads that land in different stripes.
  for (uint32_t T = 0; T != 8; ++T)
    F.record(T, FlightKind::SyncEvent, /*Aux=*/0, /*A=*/T, /*B=*/0);
  F.record(1, FlightKind::Race, /*Aux=*/1, /*A=*/99, /*B=*/7);
  EXPECT_EQ(F.total(), 9u);
  EXPECT_EQ(F.dropped(), 0u);

  std::vector<FlightEvent> S = F.snapshot();
  ASSERT_EQ(S.size(), 9u);
  for (size_t I = 1; I != S.size(); ++I)
    EXPECT_LE(S[I - 1].MonotonicNanos, S[I].MonotonicNanos)
        << "snapshot must be time-sorted across stripes";
  EXPECT_EQ(S.back().Kind, FlightKind::Race);
  EXPECT_EQ(S.back().A, 99u);

  std::string Dump = F.dump();
  EXPECT_NE(Dump.find("race"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("sync-event"), std::string::npos) << Dump;
  // A capped dump keeps the newest events (the ones a stall dump needs).
  std::string Capped = F.dump(/*MaxEvents=*/2);
  EXPECT_NE(Capped.find("race"), std::string::npos) << Capped;
}

TEST(FlightRecorderTest, ConcurrentRecordingLosesNothingButTheOverwritten) {
  FlightRecorder F(/*RingCapacity=*/64, /*Stripes=*/8);
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 1000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&F, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        F.record(T, FlightKind::Access, 0, I, 0);
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(F.total(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(F.total() - F.dropped(), F.snapshot().size());
}

//===----------------------------------------------------------------------===//
// Chrome trace sink
//===----------------------------------------------------------------------===//

TEST(TraceEventSinkTest, EmitsLoadableTraceEventJson) {
  TraceEventSink Sink;
  Sink.span("lazy-walk", "check", /*Tid=*/3, /*StartNanos=*/2000,
            /*DurationNanos=*/1500);
  Sink.instant("race", "check", /*Tid=*/3, /*Nanos=*/4000);
  EXPECT_EQ(Sink.size(), 2u);
  std::string J = Sink.json();
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"displayTimeUnit\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"ph\":\"X\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"ph\":\"i\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"lazy-walk\""), std::string::npos) << J;
  // ts/dur are microseconds: 2000ns -> 2us, 1500ns -> 1.5us.
  EXPECT_NE(J.find("\"ts\":2"), std::string::npos) << J;
  EXPECT_NE(J.find("\"dur\":1.5"), std::string::npos) << J;
}

TEST(TraceEventSinkTest, BoundedPastMaxEvents) {
  TraceEventSink Sink(/*MaxEvents=*/2);
  for (int I = 0; I != 5; ++I)
    Sink.span("s", "c", 0, 0, 1);
  EXPECT_EQ(Sink.size(), 2u);
  EXPECT_EQ(Sink.dropped(), 3u);
}

TEST(TraceEventSinkTest, NowNanosIsMonotonic) {
  uint64_t A = TraceEventSink::nowNanos();
  uint64_t B = TraceEventSink::nowNanos();
  EXPECT_LE(A, B);
}

namespace {

/// Walks the rendered traceEvents array and hands (tid, ts) to \p Fn in
/// document order. Events are flat objects, so string scanning suffices.
template <typename Fn> size_t forEachEvent(const std::string &J, Fn &&F) {
  size_t N = 0;
  size_t Pos = J.find("{\"name\":\"");
  while (Pos != std::string::npos) {
    size_t Next = J.find("{\"name\":\"", Pos + 1);
    std::string Ev = J.substr(
        Pos, Next == std::string::npos ? J.size() - Pos : Next - Pos);
    size_t TsAt = Ev.find("\"ts\":");
    size_t TidAt = Ev.find("\"tid\":");
    if (TsAt != std::string::npos && TidAt != std::string::npos) {
      ++N;
      F(std::strtoul(Ev.c_str() + TidAt + 6, nullptr, 10),
        std::strtod(Ev.c_str() + TsAt + 5, nullptr), Ev);
    }
    Pos = Next;
  }
  return N;
}

} // namespace

TEST(TraceEventSinkTest, ConcurrentTaggedEmissionStaysConsistent) {
  // The span ring is fed from many threads at once (every shard consumer
  // plus the transports): nothing may be lost below the bound, each
  // thread's emission order must survive into the document (per-tid ts
  // monotonic), and the rendered JSON must stay structurally valid — no
  // torn events from interleaved writers.
  TraceEventSink Sink(1u << 16, /*Pid=*/42);
  constexpr unsigned Threads = 8;
  constexpr unsigned PerThread = 500;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T != Threads; ++T)
    Ts.emplace_back([&Sink, T] {
      for (unsigned I = 0; I != PerThread; ++I)
        Sink.spanTagged("apply", "pipe", /*Tid=*/T,
                        /*StartNanos=*/uint64_t(I) * 1000 + T,
                        /*DurationNanos=*/500, /*Client=*/T, /*Seq=*/I,
                        /*Shard=*/static_cast<int32_t>(T % 4));
    });
  for (auto &T : Ts)
    T.join();
  ASSERT_EQ(Sink.size(), size_t(Threads) * PerThread);
  EXPECT_EQ(Sink.dropped(), 0u);

  std::string J = Sink.json();
  // Structural validity: braces/brackets balance and never go negative
  // outside string literals.
  int Depth = 0, MinDepth = 0;
  bool InStr = false, Esc = false;
  for (char C : J) {
    if (Esc) {
      Esc = false;
      continue;
    }
    if (InStr) {
      if (C == '\\')
        Esc = true;
      else if (C == '"')
        InStr = false;
      continue;
    }
    if (C == '"')
      InStr = true;
    else if (C == '{' || C == '[')
      ++Depth;
    else if (C == '}' || C == ']')
      MinDepth = std::min(MinDepth, --Depth);
  }
  EXPECT_EQ(Depth, 0);
  EXPECT_EQ(MinDepth, 0);
  EXPECT_FALSE(InStr);

  // Every event made it into the document, pid-stamped, and each thread's
  // ts sequence is monotone (start times increase per thread and the
  // mutexed push preserves per-thread order).
  std::array<double, Threads> LastTs;
  LastTs.fill(-1.0);
  std::array<size_t, Threads> Seen{};
  size_t N = forEachEvent(J, [&](unsigned long Tid, double Ts,
                                 const std::string &Ev) {
    ASSERT_LT(Tid, Threads);
    EXPECT_NE(Ev.find("\"pid\":42"), std::string::npos);
    EXPECT_GE(Ts, LastTs[Tid]) << "tid " << Tid;
    LastTs[Tid] = Ts;
    ++Seen[Tid];
  });
  EXPECT_EQ(N, size_t(Threads) * PerThread);
  for (unsigned T = 0; T != Threads; ++T)
    EXPECT_EQ(Seen[T], PerThread) << "tid " << T;
}

TEST(TraceEventSinkTest, MergeFromPreservesPidsAndRebasesTheTimeline) {
  // Cross-process merging: a merged document must keep each event's origin
  // pid (the join identity in a multi-process trace) while rebasing every
  // ts against the one global minimum.
  TraceEventSink A(/*MaxEvents=*/16, /*Pid=*/7);
  TraceEventSink B(/*MaxEvents=*/16, /*Pid=*/9);
  A.spanTagged("client_e2e", "pipe", /*Tid=*/1, /*Start=*/5000, /*Dur=*/1000,
               /*Client=*/1, /*Seq=*/0);
  A.span("flush", "pipe", /*Tid=*/1, /*Start=*/9000, /*Dur=*/500);
  B.spanTagged("wire", "pipe", /*Tid=*/2, /*Start=*/6000, /*Dur=*/800,
               /*Client=*/1, /*Seq=*/0);

  TraceEventSink M(/*MaxEvents=*/16, /*Pid=*/1);
  M.mergeFrom(A);
  M.mergeFrom(B);
  EXPECT_EQ(M.size(), 3u);
  EXPECT_EQ(M.dropped(), 0u);
  std::string J = M.json();
  EXPECT_NE(J.find("\"pid\":7"), std::string::npos) << J;
  EXPECT_NE(J.find("\"pid\":9"), std::string::npos) << J;
  // Rebase: the global minimum (5000ns) becomes the origin; the earliest
  // event renders at ts 0 and the rest keep their relative offsets in us.
  EXPECT_NE(J.find("\"ts_origin_nanos\":5000"), std::string::npos) << J;
  EXPECT_NE(J.find("\"ts\":0,"), std::string::npos) << J;
  EXPECT_NE(J.find("\"ts\":1,"), std::string::npos) << J; // 6000ns
  EXPECT_NE(J.find("\"ts\":4,"), std::string::npos) << J; // 9000ns

  // The merge target's bound still holds — overflow is counted, not lost
  // silently.
  TraceEventSink Tiny(/*MaxEvents=*/2, /*Pid=*/1);
  Tiny.mergeFrom(A);
  Tiny.mergeFrom(B);
  EXPECT_EQ(Tiny.size(), 2u);
  EXPECT_EQ(Tiny.dropped(), 1u);
}
