//===- tests/StaticRaceTest.cpp - static pre-elimination tests ------------===//
///
/// Checks that the Chord/RccJava analogs are (a) sound — they never mark a
/// dynamically racy variable safe — and (b) useful — they eliminate the
/// classic safe idioms (pre-fork init, lock consistency, thread locality)
/// while leaving barrier-synchronized data to the dynamic checker, exactly
/// the behaviour Table 1/2 depends on.
///
//===----------------------------------------------------------------------===//

#include "analysis/StaticRace.h"
#include "detectors/GoldilocksDetectors.h"
#include "vm/Builder.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

using namespace gold;

namespace {

/// Program: main initializes a global pre-fork, workers increment a shared
/// counter under a global lock, each worker also uses a private object,
/// and one global is written with no synchronization (a real race).
struct MixedProgram {
  Program P;
  uint32_t GConfig, GLock, GCount, GRacy;
  ClassId LockCls, CellCls;

  MixedProgram() {
    ProgramBuilder PB;
    LockCls = PB.addClass("Lock", {{"pad", false}});
    CellCls = PB.addClass("Cell", {{"val", false}});
    GConfig = PB.addGlobal("config");
    GLock = PB.addGlobal("lock");
    GCount = PB.addGlobal("count");
    GRacy = PB.addGlobal("racy");

    FunctionBuilder W = PB.function("worker", 0, true);
    {
      Reg L = W.newReg(), C = W.newReg(), One = W.newReg(),
          Cell = W.newReg(), V = W.newReg();
      W.constI(One, 1);
      // Thread-local object.
      W.newObj(Cell, CellCls).constI(V, 7).putField(Cell, 0, V);
      W.getField(V, Cell, 0);
      // Pre-fork config read.
      W.getG(C, GConfig);
      // Locked counter update.
      W.getG(L, GLock).monEnter(L);
      W.getG(C, GCount).addI(C, C, One).putG(GCount, C);
      W.monExit(L);
      // Unprotected write: a real race between workers.
      W.putG(GRacy, One);
      W.retVoid();
    }
    FunctionBuilder F = PB.function("main", 0);
    Reg L = F.newReg(), V = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
    F.constI(V, 42).putG(GConfig, V);
    F.newObj(L, LockCls).putG(GLock, L);
    F.constI(V, 0).putG(GCount, V);
    F.fork(T1, W.id()).fork(T2, W.id());
    F.join(T1).join(T2).retVoid();
    PB.setMain(F.id());
    P = PB.take();
  }
};

} // namespace

TEST(ChordTest, EliminatesSafeIdiomsKeepsRace) {
  MixedProgram M;
  StaticRaceResult R = runChordAnalysis(M.P);
  EXPECT_TRUE(R.SafeGlobals.count(M.GConfig)) << "pre-fork init is safe";
  EXPECT_TRUE(R.SafeGlobals.count(M.GLock)) << "lock holder global is safe";
  EXPECT_TRUE(R.SafeGlobals.count(M.GCount)) << "lock-consistent counter";
  EXPECT_FALSE(R.SafeGlobals.count(M.GRacy)) << "real race must survive";
  EXPECT_TRUE(R.SafeFields.count({M.CellCls, 0})) << "thread-local object";
  EXPECT_FALSE(R.Pairs.empty());
}

TEST(ChordTest, SoundAgainstDynamicRaces) {
  MixedProgram M;
  Program Annotated = M.P;
  applyStaticResult(Annotated, runChordAnalysis(M.P));

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(Annotated, Cfg);
  V.run();
  // The racy global must still be detected after pre-elimination.
  ASSERT_EQ(V.raceLog().size(), 1u);
  EXPECT_EQ(V.raceLog()[0].Var.Field, M.GRacy);
  // And fewer accesses were checked than exist.
  EXPECT_LT(V.stats().CheckedAccesses, V.stats().DataAccesses);
}

TEST(ChordTest, UnprotectedSharedFieldStaysChecked) {
  // Two workers share an object through a global and write its field
  // without locks: the field must remain checked.
  ProgramBuilder PB;
  ClassId Box = PB.addClass("Box", {{"data", false}});
  uint32_t GBox = PB.addGlobal("box");
  FunctionBuilder W = PB.function("worker", 0, true);
  {
    Reg B = W.newReg(), V = W.newReg();
    W.getG(B, GBox).constI(V, 1).putField(B, 0, V).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg B = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
  F.newObj(B, Box).putG(GBox, B);
  F.fork(T1, W.id()).fork(T2, W.id()).join(T1).join(T2).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();

  StaticRaceResult R = runChordAnalysis(P);
  EXPECT_FALSE(R.SafeFields.count({Box, 0}));
}

TEST(ChordTest, PerInstanceLockingIsRecognized) {
  // withdraw() pattern: every access to Account.bal happens under the
  // account's own monitor.
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GAcc = PB.addGlobal("account");
  FunctionBuilder W = PB.function("worker", 0, true);
  {
    Reg A = W.newReg(), V = W.newReg(), One = W.newReg();
    W.getG(A, GAcc).constI(One, 1);
    W.monEnter(A).getField(V, A, 0).subI(V, V, One).putField(A, 0, V);
    W.monExit(A).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
  F.newObj(A, Acc).putG(GAcc, A);
  F.fork(T1, W.id()).fork(T2, W.id()).join(T1).join(T2).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();

  StaticRaceResult R = runChordAnalysis(P);
  EXPECT_TRUE(R.SafeFields.count({Acc, 0}));
}

TEST(ChordTest, BarrierSynchronizationIsNotUnderstood) {
  // Volatile-flag barrier: dynamically race-free, but Chord cannot prove
  // it (the paper's moldyn/raytracer effect) — the array stays checked.
  ProgramBuilder PB;
  uint32_t GArr = PB.addGlobal("data");
  uint32_t GFlag = PB.addGlobal("flag", /*IsVolatile=*/true);
  FunctionBuilder W1 = PB.function("producer", 0, true);
  {
    Reg A = W1.newReg(), V = W1.newReg(), I = W1.newReg();
    W1.getG(A, GArr).constI(I, 0).constI(V, 9).astore(A, I, V);
    W1.constI(V, 1).putG(GFlag, V).retVoid();
  }
  FunctionBuilder W2 = PB.function("consumer", 0, true);
  {
    Reg A = W2.newReg(), V = W2.newReg(), I = W2.newReg();
    Label Spin = W2.label(), Go = W2.label();
    W2.bind(Spin);
    W2.getG(V, GFlag).jnz(V, Go).yield().jmp(Spin);
    W2.bind(Go);
    W2.getG(A, GArr).constI(I, 0).aload(V, A, I);
    W2.constI(I, 1).astore(A, I, V).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), N = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
  F.constI(N, 4).newArr(A, N).putG(GArr, A);
  F.fork(T1, W1.id()).fork(T2, W2.id()).join(T1).join(T2).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();

  StaticRaceResult Chord = runChordAnalysis(P);
  // The producer's store and the consumer's load must form a pair.
  EXPECT_FALSE(Chord.Pairs.empty());

  // RccJava with the barrier annotation eliminates the array...
  RccAnnotations Ann;
  Ann.RaceFree.insert("global:data[]");
  StaticRaceResult Rcc = runRccJavaAnalysis(P, Ann);
  EXPECT_FALSE(Rcc.SafeSites.empty());

  // ...and the dynamic check confirms both are sound: with Chord's result
  // applied, the detector still sees the (race-free) barrier execution.
  Program PChord = P;
  applyStaticResult(PChord, Chord);
  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PChord, Cfg);
  V.run();
  EXPECT_TRUE(V.raceLog().empty());
  EXPECT_GT(V.stats().CheckedAccesses, 0u);

  Program PRcc = P;
  applyStaticResult(PRcc, Rcc);
  GoldilocksDetector D2;
  VmConfig Cfg2;
  Cfg2.Detector = &D2;
  Vm V2(PRcc, Cfg2);
  V2.run();
  EXPECT_TRUE(V2.raceLog().empty());
  EXPECT_LT(V2.stats().CheckedAccesses, V.stats().CheckedAccesses);
}

TEST(RccJavaTest, AnnotationsAreTrusted) {
  MixedProgram M;
  RccAnnotations Ann;
  StaticRaceResult R = runRccJavaAnalysis(M.P, Ann);
  // Without annotations the lock-consistent counter is still inferred.
  EXPECT_TRUE(R.SafeGlobals.count(M.GCount));
  EXPECT_FALSE(R.SafeGlobals.count(M.GRacy));

  // An (unsound, programmer-supplied) annotation is accepted verbatim.
  Ann.RaceFree.insert("global:racy");
  StaticRaceResult R2 = runRccJavaAnalysis(M.P, Ann);
  EXPECT_TRUE(R2.SafeGlobals.count(M.GRacy));
}

TEST(StaticRaceTest, ApplyClearsFlags) {
  MixedProgram M;
  Program P = M.P;
  StaticRaceResult R = runChordAnalysis(M.P);
  applyStaticResult(P, R);
  EXPECT_FALSE(P.Globals[M.GConfig].CheckRace);
  EXPECT_TRUE(P.Globals[M.GRacy].CheckRace);
  EXPECT_FALSE(P.Classes[M.CellCls].Fields[0].CheckRace);
}

TEST(StaticRaceTest, ResultCountsAreConsistent) {
  MixedProgram M;
  StaticRaceResult R = runChordAnalysis(M.P);
  EXPECT_GT(R.TotalSites, 0u);
  EXPECT_LE(R.SafeSiteCount(), R.TotalSites);
  for (const RacePair &Pr : R.Pairs) {
    EXPECT_FALSE(R.SafeSites.count(Pr.First));
    EXPECT_FALSE(R.SafeSites.count(Pr.Second));
  }
}

TEST(StaticRaceTest, TransactionalAccessesAreNotMislabeled) {
  // Accesses inside atomic blocks are checked at commit via the commit
  // sets, not via site flags; the analysis must not be confused by them.
  // A variable accessed both transactionally and via an unprotected plain
  // write stays checked (the Example 4 pattern).
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GAcc = PB.addGlobal("account");
  FunctionBuilder W1 = PB.function("txn", 0, true);
  {
    Reg A = W1.newReg(), V = W1.newReg();
    W1.getG(A, GAcc);
    W1.atomicBegin().getField(V, A, 0).putField(A, 0, V).atomicEnd();
    W1.retVoid();
  }
  FunctionBuilder W2 = PB.function("plain", 0, true);
  {
    Reg A = W2.newReg(), V = W2.newReg();
    W2.getG(A, GAcc).constI(V, 5).putField(A, 0, V).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
  F.newObj(A, Acc).putG(GAcc, A);
  F.fork(T1, W1.id()).fork(T2, W2.id()).join(T1).join(T2).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();

  StaticRaceResult R = runChordAnalysis(P);
  EXPECT_FALSE(R.SafeFields.count({Acc, 0}));
}
