//===- tests/TracingTest.cpp - pipeline tracing tests ---------------------===//
///
/// The cross-process tracing subsystem (DESIGN.md §18) end to end in one
/// process: the deterministic ppm sampler (bit-identical decisions, exact
/// edge behavior, rate convergence), stage attribution through a real
/// DetectionService feed (pipe.* histograms and the sampled span ring), the
/// per-frame stage-sum invariant wire + ring_wait + apply == e2e on the
/// spans the service actually emitted, and the SnapshotProducer delta ring
/// behind --metrics-interval-ms and GET /metrics/history.
///
//===----------------------------------------------------------------------===//

#include "service/Service.h"
#include "service/Snapshots.h"
#include "service/Tracing.h"
#include "support/Telemetry.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

using namespace gold;

namespace {

/// Minimal span extraction from TraceEventSink::json(): the events are flat
/// objects (one nested args object), so field-by-field string scanning is
/// enough for a test — no JSON parser dependency.
struct SpanRec {
  std::string Name;
  std::string Cat;
  uint64_t Tid = 0;
  double TsUs = 0;
  double DurUs = 0;
  uint64_t Client = 0;
  uint64_t Seq = 0;
  int64_t Shard = -1;
  bool HasArgs = false;
};

std::vector<SpanRec> parseSpans(const std::string &Doc) {
  std::vector<SpanRec> Out;
  size_t At = Doc.find("\"traceEvents\":[");
  if (At == std::string::npos)
    return Out;
  size_t Pos = Doc.find("{\"name\":\"", At);
  while (Pos != std::string::npos) {
    size_t Next = Doc.find("{\"name\":\"", Pos + 1);
    std::string Ev = Doc.substr(
        Pos, Next == std::string::npos ? Doc.size() - Pos : Next - Pos);
    SpanRec R;
    auto Str = [&Ev](const char *Key, std::string &V) {
      size_t K = Ev.find(Key);
      if (K == std::string::npos)
        return;
      K += std::string(Key).size();
      V.assign(Ev, K, Ev.find('"', K) - K);
    };
    auto Num = [&Ev](const char *Key, double &V) {
      size_t K = Ev.find(Key);
      if (K == std::string::npos)
        return false;
      V = std::strtod(Ev.c_str() + K + std::string(Key).size(), nullptr);
      return true;
    };
    Str("\"name\":\"", R.Name);
    Str("\"cat\":\"", R.Cat);
    double D = 0;
    if (Num("\"tid\":", D))
      R.Tid = static_cast<uint64_t>(D);
    Num("\"ts\":", R.TsUs);
    Num("\"dur\":", R.DurUs);
    if (Num("\"client\":", D)) {
      R.HasArgs = true;
      R.Client = static_cast<uint64_t>(D);
    }
    if (Num("\"seq\":", D))
      R.Seq = static_cast<uint64_t>(D);
    if (Num("\"shard\":", D))
      R.Shard = static_cast<int64_t>(D);
    Out.push_back(std::move(R));
    Pos = Next;
  }
  return Out;
}

/// Feeds every line inline, pumping through backpressure like a transport.
void feedTraced(DetectionService &Svc, Session &S,
                const std::vector<std::string> &Lines, uint64_t ClientId,
                const PipeTraceConfig &TC) {
  for (size_t I = 0; I != Lines.size(); ++I) {
    FrameTrace FT;
    FrameTrace *FTp = nullptr;
    if (traceSampled(TC.Seed, ClientId, I, TC.SampleRatePpm)) {
      FT.OriginNanos = Svc.nowNanos();
      FT.FrameSeq = I;
      FT.Span = true;
      FTp = &FT;
    }
    for (;;) {
      FeedResult R = S.feedLine(Lines[I], FTp);
      ASSERT_NE(R.St, FeedResult::Status::Rejected) << Lines[I];
      ASSERT_NE(R.St, FeedResult::Status::Closed) << Lines[I];
      if (R.St == FeedResult::Status::Accepted)
        break;
      Svc.pumpAll(); // backpressure: retry the SAME line after a pump
    }
  }
}

std::vector<std::string> racyLines() {
  // Two threads, one real race on o5; the filler threads touch disjoint
  // variables so it stays race-free while making sampling interesting.
  std::vector<std::string> L = {"fork 0 1"};
  for (int I = 0; I != 40; ++I) {
    L.push_back("write 0 " + std::to_string(100 + I) + " 0");
    L.push_back("write 1 " + std::to_string(200 + I) + " 0");
  }
  L.push_back("write 0 5 0");
  L.push_back("write 1 5 0");
  return L;
}

} // namespace

//===----------------------------------------------------------------------===//
// The deterministic sampler
//===----------------------------------------------------------------------===//

TEST(TraceSamplerTest, EdgesAreExactAndDecisionsAreStable) {
  // ppm 0 never fires, ppm 1e6 always fires — no hash-edge surprises.
  for (uint64_t Seq = 0; Seq != 1000; ++Seq) {
    EXPECT_FALSE(traceSampled(1, 7, Seq, 0));
    EXPECT_TRUE(traceSampled(1, 7, Seq, 1000000));
  }
  // The decision is a pure function: the client and the server evaluating
  // the same (seed, client, ordinal, ppm) MUST agree, call after call.
  for (uint64_t Seq = 0; Seq != 1000; ++Seq) {
    bool A = traceSampled(42, 3, Seq, 137000);
    EXPECT_EQ(A, traceSampled(42, 3, Seq, 137000));
  }
}

TEST(TraceSamplerTest, RateConvergesAndKeysDecorrelate) {
  const uint32_t Ppm = 200000; // 20%
  uint64_t Hits = 0;
  std::set<uint64_t> SetA, SetB, SetC;
  for (uint64_t Seq = 0; Seq != 100000; ++Seq) {
    if (traceSampled(1, 7, Seq, Ppm)) {
      ++Hits;
      SetA.insert(Seq);
    }
    if (traceSampled(2, 7, Seq, Ppm))
      SetB.insert(Seq);
    if (traceSampled(1, 8, Seq, Ppm))
      SetC.insert(Seq);
  }
  // Within 2% absolute of the target rate over 100k ordinals.
  EXPECT_GT(Hits, 18000u);
  EXPECT_LT(Hits, 22000u);
  // Different seeds and different clients select genuinely different frame
  // sets (a correlated sampler would trace the same frames everywhere and
  // bias every cross-client comparison).
  EXPECT_NE(SetA, SetB);
  EXPECT_NE(SetA, SetC);
}

TEST(TraceSamplerTest, RatePpmIsMonotonicInSelection) {
  // A frame sampled at ppm P must also be sampled at every P' > P: the
  // decision is hash % 1e6 < ppm, so raising the rate only adds frames.
  for (uint64_t Seq = 0; Seq != 2000; ++Seq)
    if (traceSampled(9, 4, Seq, 50000))
      EXPECT_TRUE(traceSampled(9, 4, Seq, 400000)) << Seq;
}

//===----------------------------------------------------------------------===//
// Stage attribution through a real service feed
//===----------------------------------------------------------------------===//

TEST(PipeTraceTest, FullRateFeedRecordsHistogramsAndConsistentSpans) {
  ServiceConfig SC;
  SC.Shards = 4;
  SC.Telemetry = TelemetryLevel::Full;
  SC.Trace.Enabled = true;
  SC.Trace.SampleRatePpm = 1000000; // every frame: the invariant has no
                                    // sampling noise to hide behind
  DetectionService Svc(SC);
  auto R = Svc.open(/*ClientId=*/1);
  ASSERT_NE(R.S, nullptr) << R.Error;
  std::vector<std::string> Lines = racyLines();
  feedTraced(Svc, *R.S, Lines, 1, SC.Trace);
  R.S->close();
  Svc.drain();
  Svc.poll();
  ASSERT_EQ(R.S->takeVerdicts().size(), 1u) << "the o5 race must survive";

  // Per-stage histograms: every traced frame passed the wire stage once;
  // ring_wait/apply count shard fan-out copies, so they are >= wire.
  TelemetrySnapshot Snap = Svc.telemetry();
  std::map<std::string, const HistogramSnapshot *> H;
  for (const auto &HS : Snap.Histograms)
    H[HS.Name] = &HS;
  ASSERT_TRUE(H.count("pipe.wire"));
  ASSERT_TRUE(H.count("pipe.ring_wait"));
  ASSERT_TRUE(H.count("pipe.apply"));
  ASSERT_TRUE(H.count("pipe.verdict"));
  EXPECT_EQ(H["pipe.wire"]->Count, Lines.size());
  EXPECT_GE(H["pipe.ring_wait"]->Count, Lines.size());
  EXPECT_EQ(H["pipe.ring_wait"]->Count, H["pipe.apply"]->Count);
  EXPECT_GE(H["pipe.verdict"]->Count, 1u);

  // The span ring: group by (tid, client, seq, shard) — each shard copy of
  // a fanned-out frame carries its own complete chain — and require the
  // tentpole invariant EXACTLY (stage boundaries are forward-clamped, so
  // wire + ring_wait + apply == e2e to the nanosecond; 1ns of float slack
  // per stage covers the /1000.0 rendering).
  ASSERT_NE(Svc.spanSink(), nullptr);
  std::vector<SpanRec> Spans = parseSpans(Svc.spanSink()->json());
  ASSERT_FALSE(Spans.empty());
  std::map<std::tuple<uint64_t, uint64_t, uint64_t, int64_t>,
           std::map<std::string, double>>
      Chains;
  for (const SpanRec &S : Spans) {
    if (S.Cat != "pipe" || !S.HasArgs)
      continue;
    EXPECT_EQ(S.Client, 1u);
    Chains[{S.Tid, S.Client, S.Seq, S.Shard}][S.Name] += S.DurUs;
  }
  size_t Complete = 0;
  for (const auto &KV : Chains) {
    const auto &C = KV.second;
    if (!C.count("e2e"))
      continue;
    ASSERT_TRUE(C.count("wire") && C.count("ring_wait") && C.count("apply"))
        << "seq " << std::get<2>(KV.first);
    ++Complete;
    double Sum = C.at("wire") + C.at("ring_wait") + C.at("apply");
    EXPECT_NEAR(Sum, C.at("e2e"), 0.004) << "seq " << std::get<2>(KV.first);
  }
  EXPECT_GE(Complete, Lines.size()) << "every frame fans out at least once";
}

TEST(PipeTraceTest, UntracedFramesLeaveNoResidue) {
  // Tracing armed but every frame fed without a context (what transports do
  // for unsampled frames): no histogram samples, no spans. This is the
  // O(1)-samples discipline the within-noise overhead gate relies on.
  ServiceConfig SC;
  SC.Telemetry = TelemetryLevel::Full;
  SC.Trace.Enabled = true;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  for (const std::string &L : racyLines())
    ASSERT_EQ(R.S->feedLine(L).St, FeedResult::Status::Accepted);
  R.S->close();
  Svc.drain();
  Svc.poll();
  for (const auto &HS : Svc.telemetry().Histograms)
    if (HS.Name.rfind("pipe.", 0) == 0)
      EXPECT_EQ(HS.Count, 0u) << HS.Name;
  ASSERT_NE(Svc.spanSink(), nullptr);
  EXPECT_EQ(Svc.spanSink()->size(), 0u);
}

TEST(PipeTraceTest, DisabledTracingRegistersNothing) {
  DetectionService Svc;
  EXPECT_FALSE(Svc.pipeTracingEnabled());
  EXPECT_EQ(Svc.spanSink(), nullptr);
}

//===----------------------------------------------------------------------===//
// SnapshotProducer: the delta ring behind /metrics/history
//===----------------------------------------------------------------------===//

TEST(SnapshotProducerTest, FirstSamplePrimesAndDeltasIsolateTheInterval) {
  Telemetry Tel(TelemetryLevel::Full);
  Counter &C = Tel.counter("frames");
  Histogram &H = Tel.histogram("lat");
  SnapshotProducer::Config PC;
  PC.Source = "unit";
  PC.HistoryCapacity = 3;
  SnapshotProducer P(PC, [&] { return Tel.snapshot(); });

  // History before the interval: large values that a *cumulative* quantile
  // would leak into the next window.
  C.add(50);
  for (int I = 0; I != 100; ++I)
    H.record(1u << 20); // ~1ms
  P.sample(1000000000ull); // primes the baseline only
  EXPECT_EQ(P.historySize(), 0u);

  // The interval under test: 100 counts in 2s, latencies around 1us.
  C.add(100);
  for (int I = 0; I != 1000; ++I)
    H.record(1000);
  P.sample(3000000000ull);
  ASSERT_EQ(P.historySize(), 1u);

  std::string Doc = P.historyJson();
  EXPECT_NE(Doc.find("\"schema\":\"gold-timeseries-v1\""), std::string::npos)
      << Doc;
  EXPECT_NE(Doc.find("\"source\":\"unit\""), std::string::npos);
  EXPECT_NE(Doc.find("\"dt_secs\":2"), std::string::npos) << Doc;
  // 100 new counts over 2s = 50/s, and the delta quantiles reflect the
  // 1000ns interval population, NOT the megasecond history before it.
  EXPECT_NE(Doc.find("\"frames\":50"), std::string::npos) << Doc;
  size_t LatAt = Doc.find("\"lat\":{");
  ASSERT_NE(LatAt, std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"count\":1000", LatAt), std::string::npos) << Doc;
  // 1000ns lands in bucket [512, 1023]: p50 == p99 == 1023.
  EXPECT_NE(Doc.find("\"p50\":1023", LatAt), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"p99\":1023", LatAt), std::string::npos) << Doc;
}

TEST(SnapshotProducerTest, RingForgetsOldestAndCountsIt) {
  Telemetry Tel(TelemetryLevel::Full);
  Counter &C = Tel.counter("n");
  SnapshotProducer::Config PC;
  PC.HistoryCapacity = 3;
  SnapshotProducer P(PC, [&] { return Tel.snapshot(); });
  for (uint64_t T = 1; T != 8; ++T) {
    C.add(T);
    P.sample(T * 1000000000ull);
  }
  // 7 samples: 1 primes, 6 deltas, ring keeps 3, forgets 3.
  EXPECT_EQ(P.historySize(), 3u);
  std::string Doc = P.historyJson();
  EXPECT_NE(Doc.find("\"forgotten\":3"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"capacity\":3"), std::string::npos) << Doc;
  // The retained samples are the newest: rates 5/s, 6/s, 7/s over 1s each.
  EXPECT_NE(Doc.find("\"n\":5"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"n\":7"), std::string::npos) << Doc;
  EXPECT_EQ(Doc.find("\"n\":2,"), std::string::npos) << Doc;
}

TEST(SnapshotProducerTest, DeltaBucketQuantileBoundsAndOrder) {
  // Direct unit check of the quantile the history ring serves.
  std::vector<std::pair<unsigned, uint64_t>> B = {{4, 90}, {10, 10}};
  EXPECT_EQ(deltaBucketQuantile(B, 100, 0.50), Histogram::bucketHi(4));
  EXPECT_EQ(deltaBucketQuantile(B, 100, 0.99), Histogram::bucketHi(10));
  EXPECT_EQ(deltaBucketQuantile(B, 0, 0.99), 0u);
  EXPECT_EQ(deltaBucketQuantile({}, 5, 0.5), 0u);
  // p50 <= p99 on any shape: cumulative thresholds are monotonic in q.
  for (double Q : {0.1, 0.5, 0.9, 0.99})
    EXPECT_LE(deltaBucketQuantile(B, 100, Q),
              deltaBucketQuantile(B, 100, 0.999));
}
