//===- tests/StmTest.cpp - software transactional memory tests ------------===//

#include "stm/Stm.h"
#include "support/Failpoints.h"

#include <gtest/gtest.h>

#include <thread>

using namespace gold;

namespace {

/// Toy store: a flat table of slots with per-object spin ownership.
class ToyStore final : public StmStore {
public:
  explicit ToyStore(size_t Objects, size_t Fields)
      : Fields(Fields), Slots(Objects * Fields, 0),
        Owners(Objects) {
    for (auto &O : Owners)
      O.store(NoThread);
  }

  bool tryLockObject(ObjectId O, ThreadId T) override {
    ThreadId Expected = NoThread;
    if (Owners[O].compare_exchange_strong(Expected, T))
      return true;
    return Expected == T;
  }
  void unlockObject(ObjectId O, ThreadId T) override {
    EXPECT_EQ(Owners[O].load(), T);
    Owners[O].store(NoThread);
  }
  uint64_t loadRaw(VarId V) override {
    return Slots[V.Object * Fields + V.Field];
  }
  void storeRaw(VarId V, uint64_t Value) override {
    Slots[V.Object * Fields + V.Field] = Value;
  }

  ThreadId ownerOf(ObjectId O) { return Owners[O].load(); }

private:
  size_t Fields;
  std::vector<uint64_t> Slots;
  std::vector<std::atomic<ThreadId>> Owners;
};

} // namespace

TEST(StmTest, CommitAppliesWritesAndReleasesLocks) {
  ToyStore S(4, 2);
  TransactionManager Tm(S);
  ASSERT_TRUE(Tm.begin(1));
  EXPECT_TRUE(Tm.inTransaction(1));
  EXPECT_TRUE(Tm.write(1, VarId{2, 0}, 42));
  uint64_t V = 0;
  EXPECT_TRUE(Tm.read(1, VarId{2, 1}, V));
  EXPECT_EQ(V, 0u);
  EXPECT_EQ(S.ownerOf(2), 1u); // lock held during the transaction
  CommitSets Seen;
  ASSERT_TRUE(Tm.commit(1, [&](const CommitSets &CS) { Seen = CS; }));
  EXPECT_FALSE(Tm.inTransaction(1));
  EXPECT_EQ(S.ownerOf(2), NoThread);
  EXPECT_EQ(S.loadRaw(VarId{2, 0}), 42u);
  ASSERT_EQ(Seen.Writes.size(), 1u);
  EXPECT_EQ(Seen.Writes[0], (VarId{2, 0}));
  ASSERT_EQ(Seen.Reads.size(), 1u);
  EXPECT_EQ(Seen.Reads[0], (VarId{2, 1}));
}

TEST(StmTest, AbortRollsBackInReverseOrder) {
  ToyStore S(2, 2);
  TransactionManager Tm(S);
  S.storeRaw(VarId{1, 0}, 7);
  ASSERT_TRUE(Tm.begin(1));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 100));
  EXPECT_TRUE(Tm.write(1, VarId{1, 1}, 200));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 300)); // second write, same var
  Tm.abort(1);
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 7u); // pre-image restored
  EXPECT_EQ(S.loadRaw(VarId{1, 1}), 0u);
  EXPECT_EQ(S.ownerOf(1), NoThread);
  EXPECT_EQ(Tm.stats().Aborts, 1u);
}

TEST(StmTest, ReadSetsAreDeduplicated) {
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  ASSERT_TRUE(Tm.begin(1));
  uint64_t V;
  EXPECT_TRUE(Tm.read(1, VarId{1, 0}, V));
  EXPECT_TRUE(Tm.read(1, VarId{1, 0}, V));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 1));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 2));
  CommitSets Seen;
  ASSERT_TRUE(Tm.commit(1, [&](const CommitSets &CS) { Seen = CS; }));
  EXPECT_EQ(Seen.Reads.size(), 1u);
  EXPECT_EQ(Seen.Writes.size(), 1u);
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 2u); // last write wins
}

TEST(StmTest, ConflictingLockFailsGracefully) {
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  ASSERT_TRUE(Tm.begin(1));
  ASSERT_TRUE(Tm.begin(2));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 5));
  uint64_t V;
  EXPECT_FALSE(Tm.read(2, VarId{1, 0}, V)); // lock conflict
  Tm.abort(2);
  ASSERT_TRUE(Tm.commit(1, nullptr));
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 5u);
}

TEST(StmTest, NoNestedTransactions) {
  ToyStore S(1, 1);
  TransactionManager Tm(S);
  ASSERT_TRUE(Tm.begin(1));
  EXPECT_FALSE(Tm.begin(1));
  Tm.abort(1);
}

TEST(StmTest, RunTransactionRetriesOnConflict) {
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  // Thread 9 camps on object 1's lock for the first two body attempts.
  ASSERT_TRUE(S.tryLockObject(1, 9));
  int Attempts = 0;
  bool Ok = runTransaction(
      Tm, 1,
      [&] {
        ++Attempts;
        if (Attempts == 2)
          S.unlockObject(1, 9); // free the lock for the next retry
        return Tm.write(1, VarId{1, 0}, 77);
      },
      [](const CommitSets &) {});
  EXPECT_TRUE(Ok);
  // Attempt 1 conflicts; attempt 2 frees the camping lock before writing,
  // so it succeeds.
  EXPECT_EQ(Attempts, 2);
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 77u);
  EXPECT_EQ(Tm.stats().Aborts, 1u);
  EXPECT_EQ(Tm.stats().Commits, 1u);
}

TEST(StmTest, ConcurrentCountersStayConsistent) {
  // N threads each increment a shared counter K times transactionally;
  // 2-phase locking must make the total exact.
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  constexpr int N = 4, K = 400;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int T = 1; T <= N; ++T)
    Threads.emplace_back([&, T] {
      for (int I = 0; I != K; ++I) {
        bool Ok = runTransaction(
            Tm, static_cast<ThreadId>(T),
            [&] {
              uint64_t V;
              if (!Tm.read(static_cast<ThreadId>(T), VarId{1, 0}, V))
                return false;
              return Tm.write(static_cast<ThreadId>(T), VarId{1, 0}, V + 1);
            },
            [](const CommitSets &) {},
            /*MaxRetries=*/100000);
        if (!Ok)
          ++Failures;
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), static_cast<uint64_t>(N * K));
}

TEST(StmTest, FailpointInjectsLockConflicts) {
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  FailpointConfig FC;
  FC.rate(Failpoint::StmLockConflict, 1000000);
  {
    FailpointScope Scope(FC);
    ASSERT_TRUE(Tm.begin(1));
    EXPECT_FALSE(Tm.write(1, VarId{1, 0}, 5)); // injected, store untouched
    Tm.abort(1);
  }
  EXPECT_GT(Tm.stats().InjectedConflicts, 0u);
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 0u);
  EXPECT_EQ(S.ownerOf(1), NoThread);
  // With the scope gone the same transaction succeeds untouched.
  ASSERT_TRUE(Tm.begin(1));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 5));
  ASSERT_TRUE(Tm.commit(1, nullptr));
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 5u);
}

TEST(StmTest, FailpointDelayOnlySlowsAcquisition) {
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  FailpointConfig FC;
  FC.StallMicros = 1;
  FC.rate(Failpoint::StmLockDelay, 1000000);
  {
    FailpointScope Scope(FC);
    ASSERT_TRUE(Tm.begin(1));
    EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 9)); // delayed but successful
    ASSERT_TRUE(Tm.commit(1, nullptr));
  }
  EXPECT_GT(Failpoints::instance().fires(Failpoint::StmLockDelay), 0u);
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 9u);
}

// Crash-only cleanup: a thread that dies mid-transaction leaves object
// locks held and dirty slots behind. reapThread must roll the transaction
// back exactly like abort() so other threads can make progress, and count
// the reap so supervision can see it happened.
TEST(StmTest, ReapThreadReleasesADeadThreadsLocks) {
  ToyStore S(2, 1);
  TransactionManager Tm(S);
  ASSERT_TRUE(Tm.begin(1));
  EXPECT_TRUE(Tm.write(1, VarId{1, 0}, 42));
  // Thread 1 "exits" here without commit or abort.
  EXPECT_TRUE(Tm.reapThread(1));
  EXPECT_FALSE(Tm.inTransaction(1));
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 0u) << "reap did not undo the write";
  EXPECT_EQ(S.ownerOf(1), NoThread) << "reap did not release the lock";
  // Another thread can now lock the object the dead one held.
  ASSERT_TRUE(Tm.begin(2));
  EXPECT_TRUE(Tm.write(2, VarId{1, 0}, 7));
  ASSERT_TRUE(Tm.commit(2, nullptr));
  EXPECT_EQ(S.loadRaw(VarId{1, 0}), 7u);
  // Reaping a thread with nothing in flight is a counted no-op.
  EXPECT_FALSE(Tm.reapThread(1));
  EXPECT_EQ(Tm.stats().Reaps, 1u);
}
