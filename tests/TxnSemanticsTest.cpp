//===- tests/TxnSemanticsTest.cpp - Section 3 semantics variants ----------===//
///
/// The paper: "Other ways of specifying the interaction between strongly-
/// atomic transactions and the Java memory model can easily be
/// incorporated ... The algorithms and tools presented in this paper can
/// easily be adapted to such alternative interpretations." This suite
/// pins the three implemented interpretations with traces that tell them
/// apart, and differentially validates every precise detector against the
/// happens-before oracle under each interpretation.
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "detectors/VectorClockDetector.h"
#include "event/RandomTrace.h"
#include "hb/HbOracle.h"

#include <gtest/gtest.h>

#include <set>

using namespace gold;

namespace {

constexpr TxnSyncSemantics AllSemantics[] = {
    TxnSyncSemantics::SharedVariable,
    TxnSyncSemantics::AtomicOrder,
    TxnSyncSemantics::WriterToReader,
};

size_t racesUnder(const Trace &T, TxnSyncSemantics S) {
  EngineConfig C;
  C.Semantics = S;
  GoldilocksDetector D(C);
  return D.runTrace(T).size();
}

size_t refRacesUnder(const Trace &T, TxnSyncSemantics S) {
  GoldilocksReference::Config C;
  C.Semantics = S;
  GoldilocksReferenceDetector D(C);
  return D.runTrace(T).size();
}

size_t vcRacesUnder(const Trace &T, TxnSyncSemantics S) {
  VectorClockDetector::Config C;
  C.Semantics = S;
  VectorClockDetector D(C);
  return D.runTrace(T).size();
}

/// T1 writes V plainly and commits a transaction on X; T2 commits a
/// *disjoint* transaction on Y, then reads V plainly. Only the atomic
/// order creates a T1-commit -> T2-commit edge.
Trace disjointCommitsTrace() {
  TraceBuilder B;
  B.write(1, 5, 0);
  B.commit(1, {}, {VarId{7, 0}});
  B.commit(2, {}, {VarId{8, 0}});
  B.read(2, 5, 0);
  return B.take();
}

/// T1 writes V plainly and commits a transaction that only *reads* X; T2
/// commits a transaction that also only reads X, then reads V plainly.
/// Shared-variable semantics orders the commits (common variable X);
/// writer-to-reader does not (nobody wrote X).
Trace readSharingCommitsTrace() {
  TraceBuilder B;
  B.write(1, 5, 0);
  B.commit(1, {VarId{7, 0}}, {});
  B.commit(2, {VarId{7, 0}}, {});
  B.read(2, 5, 0);
  return B.take();
}

/// T1 writes V plainly and commits a transaction *writing* X; T2 commits
/// a transaction *reading* X, then reads V plainly. A true dataflow edge:
/// every interpretation orders the commits.
Trace writerReaderCommitsTrace() {
  TraceBuilder B;
  B.write(1, 5, 0);
  B.commit(1, {}, {VarId{7, 0}});
  B.commit(2, {VarId{7, 0}}, {});
  B.read(2, 5, 0);
  return B.take();
}

} // namespace

TEST(TxnSemanticsTest, DisjointCommitsOnlyOrderedByAtomicOrder) {
  Trace T = disjointCommitsTrace();
  EXPECT_EQ(racesUnder(T, TxnSyncSemantics::SharedVariable), 1u);
  EXPECT_EQ(racesUnder(T, TxnSyncSemantics::AtomicOrder), 0u);
  EXPECT_EQ(racesUnder(T, TxnSyncSemantics::WriterToReader), 1u);
}

TEST(TxnSemanticsTest, ReadSharingDistinguishesWriterToReader) {
  Trace T = readSharingCommitsTrace();
  EXPECT_EQ(racesUnder(T, TxnSyncSemantics::SharedVariable), 0u);
  EXPECT_EQ(racesUnder(T, TxnSyncSemantics::AtomicOrder), 0u);
  EXPECT_EQ(racesUnder(T, TxnSyncSemantics::WriterToReader), 1u);
}

TEST(TxnSemanticsTest, TrueDataflowOrderedUnderAllInterpretations) {
  Trace T = writerReaderCommitsTrace();
  for (TxnSyncSemantics S : AllSemantics)
    EXPECT_EQ(racesUnder(T, S), 0u) << txnSemanticsName(S);
}

TEST(TxnSemanticsTest, OracleAgreesOnTheDistinguishingTraces) {
  for (TxnSyncSemantics S : AllSemantics) {
    EXPECT_EQ(RaceOracle(disjointCommitsTrace(), S).races().size(),
              racesUnder(disjointCommitsTrace(), S))
        << txnSemanticsName(S);
    EXPECT_EQ(RaceOracle(readSharingCommitsTrace(), S).races().size(),
              racesUnder(readSharingCommitsTrace(), S))
        << txnSemanticsName(S);
    EXPECT_EQ(RaceOracle(writerReaderCommitsTrace(), S).races().size(),
              racesUnder(writerReaderCommitsTrace(), S))
        << txnSemanticsName(S);
  }
}

TEST(TxnSemanticsTest, TransactionalPairsNeverRaceInAnyInterpretation) {
  // Two commits writing the same variable with no other synchronization:
  // unordered under writer-to-reader, but commit/commit pairs are exempt
  // from the extended-race definition in every variant.
  TraceBuilder B;
  B.commit(1, {}, {VarId{5, 0}});
  B.commit(2, {}, {VarId{5, 0}});
  Trace T = B.take();
  for (TxnSyncSemantics S : AllSemantics) {
    EXPECT_EQ(racesUnder(T, S), 0u) << txnSemanticsName(S);
    EXPECT_EQ(RaceOracle(T, S).races().size(), 0u) << txnSemanticsName(S);
  }
}

namespace {

class TxnSemanticsDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

std::set<VarId> varSet(const std::vector<RaceReport> &Races) {
  std::set<VarId> Out;
  for (const RaceReport &R : Races)
    Out.insert(R.Var);
  return Out;
}

} // namespace

TEST_P(TxnSemanticsDifferentialTest, DetectorsMatchOracleUnderEachVariant) {
  RandomTraceParams P;
  P.Seed = GetParam() * 13 + 3;
  P.NumThreads = 3 + static_cast<ThreadId>(P.Seed % 3);
  P.NumObjects = 3;
  P.DataFields = 2;
  P.StepsPerThread = 50;
  P.WBeginTxn = 3; // transaction-heavy: the variants must matter
  Trace T = generateRandomTrace(P);

  for (TxnSyncSemantics S : AllSemantics) {
    RaceOracle Oracle(T, S);
    std::set<VarId> Expected(Oracle.racyVars().begin(),
                             Oracle.racyVars().end());

    EngineConfig EC;
    EC.Semantics = S;
    GoldilocksDetector Engine(EC);
    EXPECT_EQ(varSet(Engine.runTrace(T)), Expected)
        << "engine, " << txnSemanticsName(S) << ", seed " << P.Seed;

    GoldilocksReference::Config RC;
    RC.Semantics = S;
    GoldilocksReferenceDetector Ref(RC);
    EXPECT_EQ(varSet(Ref.runTrace(T)), Expected)
        << "reference, " << txnSemanticsName(S) << ", seed " << P.Seed;

    VectorClockDetector::Config VC;
    VC.Semantics = S;
    VectorClockDetector Vc(VC);
    EXPECT_EQ(varSet(Vc.runTrace(T)), Expected)
        << "vector clock, " << txnSemanticsName(S) << ", seed " << P.Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnSemanticsDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));
