//===- tests/StressGovernorTest.cpp - Governor under real concurrency -----===//
///
/// Stress tests for the resource governor's degradation ladder and the
/// failpoint framework with *concurrent* appenders. PR 1 established the
/// ladder's single-threaded contract (GovernorTest, ChaosTest); these tests
/// establish the multi-core one:
///
///  - hard caps may transiently overshoot by at most one cell / one Info
///    record per thread (each appender can pass the budget gate once before
///    any of them links), never more;
///  - at quiescence the accounting identities hold exactly:
///    eventListLength == 1 + CellsAllocated - CellsFreed, the health
///    snapshot agrees with the live counters, and high waters dominate;
///  - injected allocation failures and GC stalls under concurrency degrade
///    precisely: a race-free workload never produces a report, no matter
///    which allocations fail (soundness of the "never false alarms" side of
///    the governor contract survives parallelism).
///
/// None of the workloads commit transactions: a pending commit anchor pins
/// the walk window by design, which would legitimately unbound the cell
/// overshoot and turn the cap assertions into flakes.
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "support/Failpoints.h"

#include "gtest/gtest.h"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

using namespace gold;

namespace {

/// Quiescent-state accounting identities every run must restore. With the
/// quarantine pool, cells may be detached-but-not-freed, so the identity
/// covers both populations; at quiescence a bounded-grace trim must also be
/// able to drain the pool entirely (quiesce() returns true).
void checkQuiescentAccounting(GoldilocksEngine &E) {
  EngineStats St = E.stats();
  EngineHealth H = E.health();
  EXPECT_EQ(E.eventListLength() + H.QuarantinedCells,
            1 + St.CellsAllocated - St.CellsFreed);
  EXPECT_EQ(H.EventListLength, E.eventListLength());
  EXPECT_EQ(H.InfoRecords, E.infoRecordCount());
  EXPECT_GE(H.EventListHighWater, H.EventListLength);
  EXPECT_GE(H.InfoHighWater, H.InfoRecords);
  if (H.GloballyDegraded) {
    EXPECT_EQ(H.DegradationLevel, 3u);
  }
  EXPECT_TRUE(E.quiesce()) << "quiesce left cells in quarantine";
}

/// Per-thread race-free traffic: critical sections on the thread's own lock
/// plus private data. Any report from this workload is a false alarm.
void hammerRaceFree(GoldilocksDetector &D, ThreadId Tid, unsigned Iters,
                    unsigned FieldsPerObj, std::atomic<uint64_t> &Reports) {
  ObjectId Lock = 100 + Tid;
  ObjectId Priv = 200 + Tid;
  for (unsigned I = 0; I != Iters; ++I) {
    D.onAcquire(Tid, Lock);
    VarId V{Priv, I % FieldsPerObj};
    if (D.onWrite(Tid, V))
      Reports.fetch_add(1, std::memory_order_relaxed);
    if (D.onRead(Tid, V))
      Reports.fetch_add(1, std::memory_order_relaxed);
    D.onRelease(Tid, Lock);
  }
  D.onTerminate(Tid);
}

struct RunResult {
  uint64_t FalseAlarms = 0;
};

/// Allocates every object up front (single-threaded, so the alloc-reset
/// rule cannot re-enable a governor-degraded variable mid-run and the
/// DegradedVars statistic stays comparable to degradedVars().size()),
/// forks N workers, joins them.
RunResult runRaceFreeStress(GoldilocksDetector &D, unsigned NumThreads,
                            unsigned Iters, unsigned FieldsPerObj) {
  std::atomic<uint64_t> Reports{0};
  for (unsigned I = 1; I <= NumThreads; ++I) {
    D.onAlloc(0, 100 + I, 1);
    D.onAlloc(0, 200 + I, FieldsPerObj);
  }
  std::vector<std::thread> Threads;
  for (unsigned I = 1; I <= NumThreads; ++I) {
    D.onFork(0, I);
    Threads.emplace_back(hammerRaceFree, std::ref(D),
                         static_cast<ThreadId>(I), Iters, FieldsPerObj,
                         std::ref(Reports));
  }
  for (unsigned I = 1; I <= NumThreads; ++I) {
    Threads[I - 1].join();
    D.onJoin(0, I);
  }
  D.onTerminate(0);
  RunResult R;
  R.FalseAlarms = Reports.load(std::memory_order_relaxed);
  return R;
}

// With the cell cap a fraction of the traffic, every appender keeps hitting
// the gate. The gate is check-then-link, so N threads can each slip one
// cell past it — but never more than one per thread.
TEST(StressGovernorTest, CellCapOvershootBoundedByThreadCount) {
  constexpr unsigned N = 8;
  EngineConfig C;
  C.MaxCells = 128;
  C.GcThreshold = 64;
  GoldilocksDetector D(C);

  RunResult R = runRaceFreeStress(D, N, /*Iters=*/1500, /*FieldsPerObj=*/4);
  EXPECT_EQ(R.FalseAlarms, 0u);

  EngineHealth H = D.engine().health();
  EXPECT_LE(H.EventListHighWater, C.MaxCells + N)
      << "cap overshoot exceeded one cell per thread";
  EXPECT_GT(D.engine().stats().ForcedGcs, 0u)
      << "cap never forced a collection — workload too small";
  EXPECT_GE(H.DegradationLevel, 1u);
  checkQuiescentAccounting(D.engine());
}

// Same discipline for the Info-record cap: many more live variables than
// budget, so enforceInfoBudget continually picks victims; the high water
// may exceed the cap by at most one record per concurrent installer, and
// the DegradedVars counter must agree with the degraded set at quiescence.
TEST(StressGovernorTest, InfoCapOvershootBoundedAndAccounted) {
  constexpr unsigned N = 6;
  EngineConfig C;
  C.MaxInfoRecords = 32;
  C.GcThreshold = 128;
  GoldilocksDetector D(C);

  RunResult R = runRaceFreeStress(D, N, /*Iters=*/1200, /*FieldsPerObj=*/64);
  EXPECT_EQ(R.FalseAlarms, 0u);

  GoldilocksEngine &E = D.engine();
  EngineHealth H = E.health();
  EXPECT_LE(H.InfoHighWater, C.MaxInfoRecords + N)
      << "info cap overshoot exceeded one record per thread";
  EXPECT_GT(H.DegradedVars, 0u) << "cap never degraded a variable";
  EXPECT_EQ(H.DegradedVars, E.degradedVars().size())
      << "degradation statistic disagrees with the degraded set";
  checkQuiescentAccounting(E);
}

// Fault injection under concurrency: cell and Info allocations fail at a
// few permille, collections stall while appenders keep running. The engine
// must absorb all of it — no exception escapes, no false alarm is reported
// (failed appends degrade the engine, they never silently drop a
// synchronization edge while checks continue), and the books balance.
TEST(StressGovernorTest, FailpointChaosUnderConcurrentAppenders) {
  constexpr unsigned N = 8;
  FailpointConfig FC;
  FC.Seed = 7;
  FC.rate(Failpoint::EngineCellAlloc, 3000);
  FC.rate(Failpoint::EngineInfoAlloc, 1500);
  FC.rate(Failpoint::EngineGcStall, 20000);
  FC.StallMicros = 50;
  FailpointScope Scope(FC);

  EngineConfig C;
  C.MaxCells = 256;
  C.MaxInfoRecords = 64;
  C.GcThreshold = 64;
  GoldilocksDetector D(C);

  RunResult R = runRaceFreeStress(D, N, /*Iters=*/2000, /*FieldsPerObj=*/8);
  EXPECT_EQ(R.FalseAlarms, 0u)
      << "injected faults caused a false alarm on a race-free workload";

  Failpoints &FP = Failpoints::instance();
  EXPECT_GT(FP.evaluations(Failpoint::EngineCellAlloc), 0u);
  EXPECT_GT(FP.fires(Failpoint::EngineCellAlloc), 0u)
      << "cell-alloc failpoint never fired — injection rate too low";

  EngineHealth H = D.engine().health();
  EXPECT_LE(H.EventListHighWater, C.MaxCells + N);
  checkQuiescentAccounting(D.engine());
}

// The governor ladder and the grace protocol interact: every trim waits for
// in-flight readers. Run enough cap-forced collections concurrently with
// appenders to prove the handshake actually executes (GraceWaits advances)
// and terminates (the test finishes).
TEST(StressGovernorTest, GracePeriodsAdvanceUnderLoad) {
  constexpr unsigned N = 4;
  EngineConfig C;
  C.MaxCells = 96;
  C.GcThreshold = 48;
  GoldilocksDetector D(C);

  RunResult R = runRaceFreeStress(D, N, /*Iters=*/1000, /*FieldsPerObj=*/4);
  EXPECT_EQ(R.FalseAlarms, 0u);

  EngineHealth H = D.engine().health();
  EXPECT_GT(H.GraceWaits, 0u) << "GC never waited out an epoch";
  EXPECT_EQ(H.GraceWaits, D.engine().stats().GraceWaits);
  checkQuiescentAccounting(D.engine());
}

} // namespace
