//===- tests/GovernorTest.cpp - Resource governor tests -------------------===//
///
/// Tests for the engine's resource governor: hard caps are never exceeded
/// (checked after every single replayed action), the first two rungs of the
/// degradation ladder preserve exactness, rung 3 degrades visibly and never
/// invents races, and simulated allocation failure (via failpoints) can
/// never crash the engine or produce a false alarm.
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "event/RandomTrace.h"
#include "hb/HbOracle.h"
#include "support/Failpoints.h"

#include <gtest/gtest.h>

#include <set>

using namespace gold;

namespace {

/// Replays one action (the per-step version of RaceDetector::runTrace) so a
/// test can assert invariants between steps.
void applyAction(RaceDetector &D, const Trace &T, const Action &A,
                 std::vector<RaceReport> &Out) {
  switch (A.Kind) {
  case ActionKind::Alloc:
    D.onAlloc(A.Thread, A.Var.Object, A.Var.Field);
    break;
  case ActionKind::Read:
    if (auto R = D.onRead(A.Thread, A.Var))
      Out.push_back(*R);
    break;
  case ActionKind::Write:
    if (auto R = D.onWrite(A.Thread, A.Var))
      Out.push_back(*R);
    break;
  case ActionKind::VolatileRead:
    D.onVolatileRead(A.Thread, A.Var);
    break;
  case ActionKind::VolatileWrite:
    D.onVolatileWrite(A.Thread, A.Var);
    break;
  case ActionKind::Acquire:
    D.onAcquire(A.Thread, A.Var.Object);
    break;
  case ActionKind::Release:
    D.onRelease(A.Thread, A.Var.Object);
    break;
  case ActionKind::Fork:
    D.onFork(A.Thread, A.Target);
    break;
  case ActionKind::Join:
    D.onJoin(A.Thread, A.Target);
    break;
  case ActionKind::Commit: {
    auto Races = D.onCommit(A.Thread, T.commitSets(A));
    Out.insert(Out.end(), Races.begin(), Races.end());
    break;
  }
  case ActionKind::Terminate:
    D.onTerminate(A.Thread);
    break;
  }
}

Trace denseTrace(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 4;
  P.NumObjects = 5;
  P.DataFields = 3;
  P.StepsPerThread = 120;
  P.WBeginTxn = 1;
  return generateRandomTrace(P);
}

std::set<VarId> racyVarSet(const std::vector<RaceReport> &Races) {
  std::set<VarId> Out;
  for (const RaceReport &R : Races)
    Out.insert(R.Var);
  return Out;
}

std::set<VarId> oracleVarSet(const Trace &T) {
  RaceOracle O(T);
  std::set<VarId> Out;
  for (VarId V : O.racyVars())
    Out.insert(V);
  return Out;
}

} // namespace

TEST(GovernorTest, CellCapNeverExceeded) {
  for (uint64_t Seed : {1u, 5u, 9u}) {
    Trace T = denseTrace(Seed);
    EngineConfig C;
    C.MaxCells = 8;
    GoldilocksDetector D(C);
    std::vector<RaceReport> Races;
    for (const Action &A : T.Actions) {
      applyAction(D, T, A, Races);
      ASSERT_LE(D.engine().eventListLength(), C.MaxCells)
          << "cap exceeded at seed " << Seed;
    }
    EngineHealth H = D.engine().health();
    EXPECT_LE(H.EventListHighWater, C.MaxCells);
    EXPECT_GT(H.ForcedGcs, 0u) << "cap was never under pressure";
  }
}

TEST(GovernorTest, InfoCapNeverExceeded) {
  for (uint64_t Seed : {2u, 6u, 10u}) {
    Trace T = denseTrace(Seed);
    EngineConfig C;
    C.MaxInfoRecords = 4;
    GoldilocksDetector D(C);
    std::vector<RaceReport> Races;
    for (const Action &A : T.Actions) {
      applyAction(D, T, A, Races);
      ASSERT_LE(D.engine().infoRecordCount(), C.MaxInfoRecords)
          << "info cap exceeded at seed " << Seed;
    }
    EngineHealth H = D.engine().health();
    EXPECT_LE(H.InfoHighWater, C.MaxInfoRecords);
    // With more live variables than the cap, rung 3 must have fired, and
    // the cumulative counter matches the currently degraded set (nothing
    // re-enables variables in a plain replay).
    EXPECT_GT(H.DegradedVars, 0u);
    EXPECT_EQ(H.DegradedVars, D.engine().degradedVars().size());
    EXPECT_EQ(H.DegradationLevel, 3u);
  }
}

TEST(GovernorTest, CellCapAloneStaysExact) {
  // Rungs 1-2 (forced GC, coarsening) preserve exactness: with only the
  // cell cap set, every record can always be advanced to the tail, so no
  // variable is ever degraded and the verdict still matches the oracle.
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    Trace T = denseTrace(Seed);
    EngineConfig C;
    C.MaxCells = 8;
    GoldilocksDetector D(C);
    auto Races = D.runTrace(T);
    EXPECT_TRUE(D.engine().degradedVars().empty()) << "seed " << Seed;
    EXPECT_EQ(racyVarSet(Races), oracleVarSet(T)) << "seed " << Seed;
    EXPECT_FALSE(D.engine().health().GloballyDegraded);
  }
}

TEST(GovernorTest, DegradedVerdictsAreNeverFalseAlarms) {
  // Even with a punishing info cap, reported races must be real.
  for (uint64_t Seed = 0; Seed != 12; ++Seed) {
    Trace T = denseTrace(Seed);
    EngineConfig C;
    C.MaxCells = 8;
    C.MaxInfoRecords = 3;
    GoldilocksDetector D(C);
    auto Races = D.runTrace(T);
    std::set<VarId> Oracle = oracleVarSet(T);
    for (VarId V : racyVarSet(Races))
      EXPECT_TRUE(Oracle.count(V))
          << "false alarm on " << V.str() << " at seed " << Seed;
  }
}

TEST(GovernorTest, ByteBudgetTriggersLadder) {
  Trace T = denseTrace(3);
  EngineConfig C;
  C.MaxBytes = 4096;
  GoldilocksDetector D(C);
  auto Races = D.runTrace(T);
  EngineHealth H = D.engine().health();
  EXPECT_GT(H.DegradationEvents, 0u);
  EXPECT_GT(H.ApproxBytes, 0u);
  // Soundness under the byte budget as well.
  std::set<VarId> Oracle = oracleVarSet(T);
  for (VarId V : racyVarSet(Races))
    EXPECT_TRUE(Oracle.count(V)) << "false alarm on " << V.str();
}

TEST(GovernorTest, CapsUnsetMatchesBaselineExactly) {
  // A governor that never engages must be invisible: same reports, same
  // order, level 0, no degradation counters.
  for (uint64_t Seed : {4u, 7u, 11u}) {
    Trace T = denseTrace(Seed);
    GoldilocksDetector Base;  // caps unset
    EngineConfig C;
    C.MaxCells = 1u << 30;    // caps set but unreachable
    C.MaxInfoRecords = 1u << 30;
    GoldilocksDetector Capped(C);
    auto A = Base.runTrace(T);
    auto B = Capped.runTrace(T);
    ASSERT_EQ(A.size(), B.size());
    for (size_t I = 0; I != A.size(); ++I) {
      EXPECT_EQ(A[I].Var, B[I].Var);
      EXPECT_EQ(A[I].Thread, B[I].Thread);
    }
    EngineHealth H = Base.engine().health();
    EXPECT_EQ(H.DegradationLevel, 0u);
    EXPECT_EQ(H.DegradationEvents, 0u);
    EXPECT_EQ(H.DegradedVars, 0u);
    EXPECT_EQ(H.ForcedGcs, 0u);
    EXPECT_FALSE(H.GloballyDegraded);
  }
}

TEST(GovernorTest, InfoAllocFailureDegradesInsteadOfCrashing) {
  // Every Info allocation fails: each accessed variable degrades on first
  // touch, nothing is reported, nothing crashes.
  Trace T = denseTrace(8);
  GoldilocksDetector D;
  FailpointConfig FC;
  FC.rate(Failpoint::EngineInfoAlloc, 1000000);
  std::vector<RaceReport> Races;
  {
    FailpointScope Scope(FC);
    Races = D.runTrace(T);
  }
  EXPECT_TRUE(Races.empty());
  EXPECT_FALSE(D.engine().degradedVars().empty());
  EXPECT_EQ(D.engine().infoRecordCount(), 0u);
  EXPECT_EQ(D.engine().health().DegradationLevel, 3u);
}

TEST(GovernorTest, CellAllocFailureDegradesGlobally) {
  // Every cell allocation fails, even after the forced collection: the
  // engine must fall to the engine-wide last resort, not crash and not
  // report garbage.
  Trace T = denseTrace(8);
  GoldilocksDetector D;
  FailpointConfig FC;
  FC.rate(Failpoint::EngineCellAlloc, 1000000);
  std::vector<RaceReport> Races;
  {
    FailpointScope Scope(FC);
    Races = D.runTrace(T);
  }
  EXPECT_TRUE(Races.empty());
  EngineHealth H = D.engine().health();
  EXPECT_TRUE(H.GloballyDegraded);
  EXPECT_EQ(H.DegradationLevel, 3u);
  EXPECT_GT(H.ForcedGcs, 0u);
}

TEST(GovernorTest, HealthSnapshotIsConsistent) {
  Trace T = denseTrace(5);
  EngineConfig C;
  C.MaxCells = 16;
  GoldilocksDetector D(C);
  (void)D.runTrace(T);
  const GoldilocksEngine &E = D.engine();
  EngineHealth H = D.engine().health();
  EXPECT_EQ(H.EventListLength, E.eventListLength());
  EXPECT_EQ(H.InfoRecords, E.infoRecordCount());
  EXPECT_EQ(H.TrackedVars, E.distinctVarsChecked());
  EXPECT_GE(H.EventListHighWater, H.EventListLength);
  EXPECT_GE(H.InfoHighWater, H.InfoRecords);
  EXPECT_GE(H.DegradationLevel, 1u); // the cap forced at least one GC
  EXPECT_FALSE(H.str().empty());
  // The adapter surfaces the same snapshot through the common interface.
  auto Via = static_cast<RaceDetector &>(D).health();
  ASSERT_TRUE(Via.has_value());
  EXPECT_EQ(Via->EventListLength, H.EventListLength);
  EXPECT_EQ(Via->DegradationLevel, H.DegradationLevel);
}

TEST(GovernorTest, AllocMakesDegradedVariableFreshAgain) {
  GoldilocksDetector D;
  VarId V{1, 0};
  FailpointConfig FC;
  FC.rate(Failpoint::EngineInfoAlloc, 1000000);
  {
    FailpointScope Scope(FC);
    EXPECT_EQ(D.onWrite(0, V), std::nullopt);
  }
  ASSERT_EQ(D.engine().degradedVars().size(), 1u);
  // Rule 8: reallocation of the object makes its variables fresh — and
  // checked exactly — again.
  D.onAlloc(0, V.Object, 1);
  EXPECT_TRUE(D.engine().degradedVars().empty());
  // The variable is actually checked again: an unsynchronized write by
  // another thread must now race.
  EXPECT_EQ(D.onWrite(0, V), std::nullopt);
  EXPECT_NE(D.onWrite(1, V), std::nullopt);
}

TEST(GovernorTest, GcStallFailpointOnlyDelays) {
  Trace T = denseTrace(2);
  EngineConfig C;
  C.MaxCells = 8;
  GoldilocksDetector D(C);
  FailpointConfig FC;
  FC.StallMicros = 1;
  FC.rate(Failpoint::EngineGcStall, 1000000);
  std::vector<RaceReport> Races;
  {
    FailpointScope Scope(FC);
    Races = D.runTrace(T);
  }
  EXPECT_EQ(racyVarSet(Races), oracleVarSet(T));
}
