//===- tests/SupervisionTest.cpp - Supervision layer tests ----------------===//
///
/// Tests for the supervision subsystem introduced with the bounded-grace
/// collector: the event ring, the supervisor's stall/escalation logic
/// (driven deterministically through a fake engine), the watchdog thread,
/// and — against the real engine — the liveness properties the layer
/// exists to provide:
///
///  - a reader parked inside an epoch section cannot wedge collection:
///    the grace wait hits its deadline and the prefix is quarantined;
///  - threads that exit without deregistering leak their epoch slots only
///    until reclamation recycles them (self-heal on exhaustion);
///  - deregistration releases a dead thread's pending commit anchor so the
///    list can be trimmed again;
///  - shutdown() freezes recording without inventing verdicts;
///  - none of the above ever produces a false alarm (precision survives
///    every degraded path).
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "event/RandomTrace.h"
#include "hb/HbOracle.h"
#include "support/Failpoints.h"
#include "support/Supervisor.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

using namespace gold;

namespace {

using Clock = std::chrono::steady_clock;

double elapsedMillis(Clock::time_point Since) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             Clock::now() - Since)
      .count();
}

/// A scripted SupervisedEngine: the test controls exactly what each sample
/// reports and records what the supervisor does about it.
struct FakeEngine {
  EngineHealth Next;
  std::vector<unsigned> EscalatedRungs;
  size_t ReclaimableSlots = 0;
  uint64_t ReclaimCalls = 0;

  SupervisedEngine bundle() {
    SupervisedEngine T;
    T.Sample = [this] { return Next; };
    T.Escalate = [this](unsigned R) { EscalatedRungs.push_back(R); };
    T.ReclaimDeadSlots = [this] {
      ++ReclaimCalls;
      size_t N = ReclaimableSlots;
      ReclaimableSlots = 0;
      return N;
    };
    return T;
  }
};

size_t countCause(const std::vector<SupervisionEvent> &Events,
                  SupervisionCause C) {
  size_t N = 0;
  for (const SupervisionEvent &E : Events)
    N += E.Cause == C;
  return N;
}

} // namespace

//===----------------------------------------------------------------------===//
// Event ring
//===----------------------------------------------------------------------===//

TEST(SupervisionRingTest, WrapsAndCountsDrops) {
  SupervisionRing Ring(4);
  EXPECT_EQ(Ring.capacity(), 4u);
  for (uint64_t I = 0; I != 10; ++I) {
    SupervisionEvent E;
    E.Delta = I;
    Ring.push(std::move(E));
  }
  EXPECT_EQ(Ring.total(), 10u);
  EXPECT_EQ(Ring.dropped(), 6u);
  std::vector<SupervisionEvent> Kept = Ring.snapshot();
  ASSERT_EQ(Kept.size(), 4u);
  // Oldest surviving event first.
  for (size_t I = 0; I != Kept.size(); ++I)
    EXPECT_EQ(Kept[I].Delta, 6 + I);
}

TEST(SupervisionRingTest, EventRendersEveryField) {
  SupervisionEvent E;
  E.MonotonicNanos = 1500000000; // 1.5s
  E.Cause = SupervisionCause::Escalation;
  E.Rung = 2;
  E.Delta = 7;
  std::string S = E.str();
  EXPECT_NE(S.find("1.500000s"), std::string::npos) << S;
  EXPECT_NE(S.find("escalation"), std::string::npos) << S;
  EXPECT_NE(S.find("rung=2"), std::string::npos) << S;
  EXPECT_NE(S.find("delta=7"), std::string::npos) << S;
  EXPECT_NE(S.find("cells="), std::string::npos) << S;
}

//===----------------------------------------------------------------------===//
// Supervisor decision logic (deterministic, via the fake engine)
//===----------------------------------------------------------------------===//

TEST(SupervisorTest, EscalatesProgressivelyAfterConsecutiveStalls) {
  FakeEngine F;
  F.ReclaimableSlots = 3;
  SupervisorConfig C;
  C.StallEscalationThreshold = 2;
  Supervisor Sup(F.bundle(), C);

  Sup.poll(); // baseline sample, no deltas yet
  EXPECT_EQ(Sup.samples(), 1u);
  EXPECT_TRUE(F.EscalatedRungs.empty());

  // Two consecutive stalling samples: reclaim fires immediately on the
  // first, the ladder escalates to rung 1 on the second.
  F.Next.Stalls = 1;
  Sup.poll();
  EXPECT_EQ(F.ReclaimCalls, 1u);
  EXPECT_TRUE(F.EscalatedRungs.empty());
  F.Next.Stalls = 2;
  Sup.poll();
  ASSERT_EQ(F.EscalatedRungs, (std::vector<unsigned>{1}));

  // Keep stalling: the progression climbs to rung 2, then 3, and stays
  // at 3 (there is no rung 4). Eight stalling samples at threshold 2 is
  // four escalations.
  for (uint64_t S = 3; S <= 8; ++S) {
    F.Next.Stalls = S;
    Sup.poll();
  }
  EXPECT_EQ(F.EscalatedRungs, (std::vector<unsigned>{1, 2, 3, 3}));
  EXPECT_EQ(Sup.escalations(), 4u);

  auto Events = Sup.events();
  EXPECT_EQ(countCause(Events, SupervisionCause::GraceStall), 8u);
  EXPECT_EQ(countCause(Events, SupervisionCause::Escalation), 4u);
  EXPECT_EQ(countCause(Events, SupervisionCause::SlotsReclaimed), 1u)
      << "only the poll that actually recycled slots should record one";
}

TEST(SupervisorTest, CleanSampleResetsTheProgression) {
  FakeEngine F;
  SupervisorConfig C;
  C.StallEscalationThreshold = 2;
  Supervisor Sup(F.bundle(), C);

  Sup.poll();
  F.Next.Stalls = 1;
  Sup.poll(); // stall #1
  F.Next.Stalls = 2;
  Sup.poll(); // stall #2 -> rung 1
  ASSERT_EQ(F.EscalatedRungs, (std::vector<unsigned>{1}));

  Sup.poll(); // same counters: a clean sample, progression resets

  F.Next.Stalls = 3;
  Sup.poll();
  F.Next.Stalls = 4;
  Sup.poll();
  // After the reset the next escalation starts over at rung 1.
  EXPECT_EQ(F.EscalatedRungs, (std::vector<unsigned>{1, 1}));
}

TEST(SupervisorTest, AppendStormIsRecordedNotEscalated) {
  FakeEngine F;
  SupervisorConfig C;
  C.AppendStormThreshold = 100;
  Supervisor Sup(F.bundle(), C);

  Sup.poll();
  F.Next.AppendRetries = 250; // delta 250 >= 100
  Sup.poll();
  auto Events = Sup.events();
  ASSERT_EQ(countCause(Events, SupervisionCause::AppendStorm), 1u);
  EXPECT_TRUE(F.EscalatedRungs.empty())
      << "append contention alone must not climb the ladder";
}

TEST(SupervisorTest, WatchdogThreadStartsSamplesAndStops) {
  FakeEngine F;
  SupervisorConfig C;
  C.SamplePeriodMillis = 2;
  Supervisor Sup(F.bundle(), C);
  EXPECT_FALSE(Sup.running());

  Sup.start();
  Sup.start(); // idempotent
  EXPECT_TRUE(Sup.running());
  Clock::time_point T0 = Clock::now();
  while (Sup.samples() < 3 && elapsedMillis(T0) < 5000)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(Sup.samples(), 3u) << "watchdog never sampled";

  Sup.stop();
  Sup.stop(); // idempotent
  EXPECT_FALSE(Sup.running());
  auto Events = Sup.events();
  EXPECT_EQ(countCause(Events, SupervisionCause::WatchdogStart), 1u);
  EXPECT_EQ(countCause(Events, SupervisionCause::WatchdogStop), 1u);
}

//===----------------------------------------------------------------------===//
// Liveness against the real engine
//===----------------------------------------------------------------------===//

// A reader parked inside its epoch section for much longer than the grace
// deadline: collection must complete within the deadline (quarantining the
// prefix) instead of blocking until the reader wakes, and once the reader
// is gone a quiesce() must drain the quarantine.
TEST(SupervisionEngineTest, ParkedReaderCannotWedgeCollection) {
  EngineConfig C;
  C.GcThreshold = 0; // manual collections only
  C.GraceDeadlineMicros = 20000; // 20ms
  GoldilocksEngine E(C);

  // Grow an unreferenced prefix worth trimming.
  for (unsigned I = 0; I != 200; ++I) {
    E.onAcquire(1, 5);
    E.onRelease(1, 5);
  }

  FailpointConfig FC;
  FC.rate(Failpoint::EngineReaderPark, 1000000); // every read section parks
  FC.StallMicros = 500000;                       // ... for 500ms
  std::atomic<bool> Entered{false};
  std::thread Parked;
  {
    FailpointScope Scope(FC);
    Parked = std::thread([&] {
      Entered.store(true);
      E.onRead(2, VarId{7, 0}); // parks inside the epoch section
    });
    while (!Entered.load())
      std::this_thread::yield();
    // Give the parked thread time to actually enter its read section.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    Clock::time_point T0 = Clock::now();
    E.collectGarbage();
    double Ms = elapsedMillis(T0);
    EXPECT_LT(Ms, 400.0)
        << "collection blocked on the parked reader instead of quarantining";
    Parked.join();
  }

  EngineStats St = E.stats();
  EXPECT_GE(St.GraceTimeouts, 1u) << "the grace deadline never fired";
  EXPECT_GT(St.CellsQuarantined, 0u) << "nothing was deferred to quarantine";

  // Reader gone, failpoints disarmed: draining must succeed and the books
  // must balance with the quarantine empty.
  EXPECT_TRUE(E.quiesce());
  EngineHealth H = E.health();
  EXPECT_EQ(H.QuarantinedCells, 0u);
  St = E.stats();
  EXPECT_EQ(E.eventListLength(), 1 + St.CellsAllocated - St.CellsFreed);
}

// Quarantined cells count against the cell budget: with a permanently
// parked reader and a tiny MaxCells, the governor must bound memory (by
// globally degrading as a last resort) rather than grow without limit.
TEST(SupervisionEngineTest, QuarantineCountsAgainstTheCellBudget) {
  EngineConfig C;
  C.MaxCells = 64;
  C.GcThreshold = 32;
  C.GraceDeadlineMicros = 1000; // 1ms: every grace times out below
  GoldilocksEngine E(C);

  FailpointConfig FC;
  FC.rate(Failpoint::EngineReaderPark, 1000000);
  FC.StallMicros = 400000;
  std::atomic<bool> Entered{false};
  std::thread Parked;
  {
    FailpointScope Scope(FC);
    Parked = std::thread([&] {
      Entered.store(true);
      E.onRead(2, VarId{7, 0});
    });
    while (!Entered.load())
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));

    // Keep appending against the cap while no grace period can complete.
    for (unsigned I = 0; I != 5000; ++I) {
      E.onAcquire(1, 5);
      E.onRelease(1, 5);
    }
    Parked.join();
  }

  EngineHealth H = E.health();
  EXPECT_LE(H.EventListLength + H.QuarantinedCells, C.MaxCells + 64)
      << "retained cells (live + quarantined) escaped the governor";
  EXPECT_TRUE(H.GloballyDegraded)
      << "with reclamation wedged, only the global backstop bounds memory";
  // Quiescent again: the quarantine drains and accounting balances.
  EXPECT_TRUE(E.quiesce());
  EngineStats St = E.stats();
  EXPECT_EQ(E.eventListLength() + E.health().QuarantinedCells,
            1 + St.CellsAllocated - St.CellsFreed);
}

// The quarantine TOCTOU, end to end: a reader loads its position from
// Last, a timed-out grace quarantines that cell with refcount 0, and the
// reader then retains it. The resurrected cell is *older* in walk order
// than everything detached later, so a subsequent collection — even one
// whose grace period succeeds — must not free a later prefix directly
// while the quarantine is pinned: walks from the resurrected cell flow
// forward along Next straight through it (ASan turns a direct free here
// into a use-after-free).
TEST(SupervisionEngineTest, RetainDuringTimedOutGraceProtectsLaterPrefixes) {
  EngineConfig C;
  C.GcThreshold = 0;
  C.GraceDeadlineMicros = 10000; // 10ms
  GoldilocksEngine E(C);

  for (unsigned I = 0; I != 50; ++I) {
    E.onAcquire(1, 5);
    E.onRelease(1, 5);
  }

  FailpointConfig FC;
  FC.rate(Failpoint::EngineRetainStall, 1000000);
  FC.StallMicros = 250000; // 250ms between the Last load and the retain
  std::atomic<bool> Entered{false};
  std::thread Reader;
  {
    FailpointScope Scope(FC);
    Reader = std::thread([&] {
      Entered.store(true);
      // Loads PosC = Last, parks, then retains PosC as v's read info.
      EXPECT_FALSE(E.onRead(2, VarId{7, 0}).has_value());
    });
    while (!Entered.load())
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    // Move Last past the reader's loaded position, then collect: the
    // grace times out on the parked reader and the whole prefix —
    // including the loaded-but-not-yet-retained position — is detached
    // into quarantine at refcount 0.
    for (unsigned I = 0; I != 50; ++I) {
      E.onAcquire(1, 5);
      E.onRelease(1, 5);
    }
    E.collectGarbage();
    EXPECT_GE(E.stats().GraceTimeouts, 1u);
    EXPECT_GT(E.stats().CellsQuarantined, 0u);
    Reader.join(); // wakes, retains the quarantined cell, installs the Info
  }

  // Reader gone: the next grace *succeeds*, but the flush stops at the
  // batch holding the resurrected cell. The fresh prefix detached by this
  // collection must join the quarantine behind it, not go to the
  // allocator.
  for (unsigned I = 0; I != 80; ++I) {
    E.onAcquire(1, 5);
    E.onRelease(1, 5);
  }
  E.collectGarbage();
  EXPECT_GT(E.health().QuarantinedCells, 200u)
      << "the second prefix bypassed the pinned quarantine";

  // Walk from the resurrected position forward across the quarantined
  // chain into the cells the second collection detached. (The verdict is a
  // true race: threads 2 and 3 share no synchronization on v.)
  EXPECT_TRUE(E.onWrite(3, VarId{7, 0}).has_value());

  // The write dropped v's read info (the quarantine's only pin): draining
  // must now free everything and the books must balance.
  EXPECT_TRUE(E.quiesce());
  EngineHealth H = E.health();
  EXPECT_EQ(H.QuarantinedCells, 0u);
  EngineStats St = E.stats();
  EXPECT_EQ(E.eventListLength(), 1 + St.CellsAllocated - St.CellsFreed);
}

// A failed slot claim is cached thread-locally, but the failure must age
// out: once the stuck readers are gone, dead-slot reclamation can refill
// the array and the thread must return to the epoch fast path instead of
// staying pinned to the fallback mutex for the engine's lifetime.
TEST(SupervisionEngineTest, FailedSlotClaimAgesOutOfTheThreadCache) {
  EngineConfig C;
  C.GcThreshold = 0;
  C.EpochSlotCount = 4; // tiny array so 4 parked readers exhaust it
  GoldilocksEngine E(C);

  FailpointConfig FC;
  FC.rate(Failpoint::EngineReaderPark, 1000000);
  FC.StallMicros = 400000; // 400ms parked sections
  std::atomic<unsigned> Entered{0};
  std::vector<std::thread> Parked;
  {
    FailpointScope Scope(FC);
    for (unsigned I = 0; I != 4; ++I)
      Parked.emplace_back([&, I] {
        Entered.fetch_add(1);
        EXPECT_FALSE(E.onRead(10 + I, VarId{3, I}).has_value());
      });
    while (Entered.load() != 4)
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Every slot is inside a parked section: this claim fails (nothing is
    // reclaimable) and the failure is cached. (This read parks too — that
    // only slows the test.)
    EXPECT_FALSE(E.onRead(2, VarId{7, 0}).has_value());
    EXPECT_GE(E.stats().SlotFallbacks, 1u) << "slots were not exhausted";
    for (std::thread &T : Parked)
      T.join();
  }

  // The parked threads are gone; their slots are quiescent but still
  // claimed (no deregistration). Within the negative-cache TTL the thread
  // must retry allocation, reclaim the dead slots and leave the fallback
  // path.
  for (unsigned K = 0; K != 64; ++K)
    EXPECT_FALSE(E.onRead(2, VarId{8, K}).has_value());
  EngineStats St = E.stats();
  EXPECT_GT(St.ReclaimedDeadSlots, 0u)
      << "the cached failure never aged out into an allocation retry";
  EXPECT_LT(St.SlotFallbacks, 40u)
      << "the thread stayed on the fallback mutex after slots freed up";
}

// More OS threads than epoch slots, every one of them "crashing" (the
// deregister failpoint drops the cleanup): the slot array must self-heal
// by reclaiming quiescent dead slots instead of pushing readers onto the
// fallback mutex forever.
TEST(SupervisionEngineTest, ExitedThreadSlotsAreReclaimedOnExhaustion) {
  EngineConfig C;
  C.GcThreshold = 0;
  GoldilocksEngine E(C);

  FailpointConfig FC;
  FC.rate(Failpoint::EngineDeregisterDrop, 1000000);
  {
    FailpointScope Scope(FC);
    // More sequential threads than NumEpochSlots (512), each taking a slot
    // and exiting without giving it back.
    for (unsigned I = 0; I != 600; ++I) {
      ThreadId T = 10 + I;
      std::thread([&, T] {
        E.registerThread(T);
        EXPECT_FALSE(E.onRead(T, VarId{3, 0}).has_value());
        E.deregisterThread(T); // dropped by the failpoint
      }).join();
    }
    EXPECT_GT(Failpoints::instance().fires(Failpoint::EngineDeregisterDrop),
              0u);
  }

  EngineStats St = E.stats();
  EXPECT_GT(St.ReclaimedDeadSlots, 0u)
      << "slot exhaustion never triggered reclamation";
  EXPECT_EQ(St.ThreadsRegistered, 600u);
  EXPECT_EQ(St.ThreadsDeregistered, 0u) << "the failpoint should have "
                                           "dropped every deregistration";

  // After disarming, explicit reclamation plus a grace period still works.
  // (Append some sync cells first: a collection with nothing to trim
  // rightly skips the grace protocol.)
  E.reclaimDeadSlots();
  for (unsigned I = 0; I != 8; ++I) {
    E.onAcquire(1, 5);
    E.onRelease(1, 5);
  }
  E.collectGarbage();
  EXPECT_GT(E.stats().GraceWaits, 0u);
}

// A thread that dies between commitPoint and finishCommit leaves a pending
// anchor pinning the walk window. deregisterThread must release it so the
// collector can trim again.
TEST(SupervisionEngineTest, DeregisterReleasesAPendingCommitAnchor) {
  EngineConfig C;
  C.GcThreshold = 0;
  GoldilocksEngine E(C);

  CommitSets CS;
  CS.Reads.push_back(VarId{9, 0});
  E.commitPoint(1, CS); // anchor retained; finishCommit never comes

  for (unsigned I = 0; I != 150; ++I) {
    E.onAcquire(2, 5);
    E.onRelease(2, 5);
  }
  E.collectGarbage();
  size_t Pinned = E.eventListLength();
  EXPECT_GT(Pinned, 150u) << "the pending anchor should pin the prefix";

  E.deregisterThread(1); // crash-only cleanup releases the anchor
  E.collectGarbage();
  EXPECT_LT(E.eventListLength(), 10u)
      << "the prefix stayed pinned after the dead thread was deregistered";
  EXPECT_EQ(E.stats().ThreadsDeregistered, 1u);
}

TEST(SupervisionEngineTest, RegisterAndDeregisterAreIdempotent) {
  GoldilocksEngine E;
  E.registerThread(4);
  E.registerThread(4);
  EXPECT_EQ(E.stats().ThreadsRegistered, 1u);
  E.deregisterThread(4);
  E.deregisterThread(4);
  EXPECT_EQ(E.stats().ThreadsDeregistered, 1u);
  E.deregisterThread(99); // never seen: a no-op, not a crash
  EXPECT_EQ(E.stats().ThreadsDeregistered, 1u);
}

// shutdown(): hooks become no-ops and verdicts are suppressed — a truncated
// synchronization order must never invent a race.
TEST(SupervisionEngineTest, ShutdownFreezesRecordingAndSuppressesVerdicts) {
  GoldilocksEngine E;
  E.onAcquire(1, 5);
  EXPECT_FALSE(E.onWrite(1, VarId{3, 0}).has_value());
  E.onRelease(1, 5);

  E.shutdown();
  EngineStats Frozen = E.stats();
  size_t Len = E.eventListLength();

  // A would-be racy pattern after shutdown: no cells, no verdicts.
  E.onAcquire(2, 6);
  EXPECT_FALSE(E.onWrite(2, VarId{3, 0}).has_value());
  E.onRelease(2, 6);
  E.onFork(1, 7);

  EXPECT_EQ(E.eventListLength(), Len);
  EXPECT_EQ(E.stats().SyncEvents, Frozen.SyncEvents);
  EXPECT_EQ(E.stats().Races, 0u);
  EXPECT_TRUE(E.quiesce());
}

//===----------------------------------------------------------------------===//
// Precision under supervision pressure
//===----------------------------------------------------------------------===//

// A grace stall diagnosed by the supervisor must leave an actionable
// post-mortem — governor health, the full telemetry snapshot, and the
// per-thread flight-recorder tails — captured at most once per stall
// episode, with a StallDump event in the ring marking when it was taken.
TEST(SupervisionEngineTest, GraceStallCapturesATelemetryDump) {
  EngineConfig C;
  C.GcThreshold = 0;             // manual collections only
  C.GraceDeadlineMicros = 20000; // 20ms
  C.Telemetry = TelemetryLevel::Full; // flight-recorder content in the dump
  GoldilocksEngine E(C);

  // Grow an unreferenced prefix worth trimming.
  for (unsigned I = 0; I != 200; ++I) {
    E.onAcquire(1, 5);
    E.onRelease(1, 5);
  }

  Supervisor Sup(superviseEngine(E));
  Sup.poll(); // baseline sample before the stall

  FailpointConfig FC;
  FC.rate(Failpoint::EngineReaderPark, 1000000); // every read section parks
  FC.StallMicros = 300000;                       // ... for 300ms
  std::atomic<bool> Entered{false};
  std::thread Parked;
  {
    FailpointScope Scope(FC);
    Parked = std::thread([&] {
      Entered.store(true);
      E.onRead(2, VarId{7, 0}); // parks inside the epoch section
    });
    while (!Entered.load())
      std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    E.collectGarbage(); // hits the grace deadline under the parked reader
    Parked.join();
  }
  ASSERT_GE(E.stats().GraceTimeouts, 1u) << "the grace deadline never fired";

  Sup.poll(); // sees the stall delta and captures the post-mortem
  EXPECT_EQ(Sup.stallDumps(), 1u);
  std::string Dump = Sup.lastStallDump();
  EXPECT_NE(Dump.find("=== engine stall dump ==="), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("health:"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("telemetry level=full"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("grace_timeouts"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("--- flight recorder"), std::string::npos) << Dump;
  EXPECT_NE(Dump.find("grace-wait"), std::string::npos)
      << "the timed-out grace wait must be on the flight record:\n" << Dump;
  EXPECT_EQ(countCause(Sup.events(), SupervisionCause::StallDump), 1u);

  // A clean sample ends the episode without re-dumping.
  Sup.poll();
  EXPECT_EQ(Sup.stallDumps(), 1u);
}

// The supervised engine under stall injection, short deadlines and a live
// watchdog must stay *sound*: on random traces every race it still reports
// is confirmed by the happens-before oracle (degradation may miss races,
// never invent them).
TEST(SupervisionEngineTest, DegradedPathsNeverInventRaces) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    RandomTraceParams P;
    P.Seed = Seed;
    P.NumThreads = 3;
    P.NumObjects = 4;
    P.StepsPerThread = 60;
    Trace T = generateRandomTrace(P);

    RaceOracle Oracle(T);
    std::set<VarId> Expected;
    for (VarId V : Oracle.racyVars())
      Expected.insert(V);

    FailpointConfig FC;
    FC.Seed = Seed;
    FC.rate(Failpoint::EngineGcStall, 300000);
    FC.rate(Failpoint::EngineReaderPark, 2000);
    FC.StallMicros = 200;
    FailpointScope Scope(FC);

    EngineConfig C;
    C.MaxCells = 48;
    C.GcThreshold = 24;
    C.GraceDeadlineMicros = 100; // almost every grace times out
    GoldilocksDetector D(C);
    Supervisor Sup(superviseEngine(D.engine()));
    auto Races = D.runTrace(T);
    Sup.poll();

    for (const RaceReport &R : Races)
      EXPECT_TRUE(Expected.count(R.Var))
          << "seed " << Seed << ": invented race on " << R.Var.str();
  }
}

// Race-free concurrent traffic with the watchdog escalating under injected
// stalls: still zero reports, and the run terminates (liveness).
TEST(SupervisionEngineTest, WatchdogUnderConcurrentLoadStaysPrecise) {
  FailpointConfig FC;
  FC.Seed = 11;
  FC.rate(Failpoint::EngineGcStall, 100000);
  FC.StallMicros = 100;
  FailpointScope Scope(FC);

  EngineConfig C;
  C.MaxCells = 128;
  C.GcThreshold = 64;
  C.GraceDeadlineMicros = 2000;
  GoldilocksDetector D(C);
  SupervisorConfig SC;
  SC.SamplePeriodMillis = 2;
  Supervisor Sup(superviseEngine(D.engine()), SC);
  Sup.start();

  std::atomic<uint64_t> Reports{0};
  constexpr unsigned N = 4;
  for (unsigned I = 1; I <= N; ++I) {
    D.onAlloc(0, 100 + I, 1);
    D.onAlloc(0, 200 + I, 4);
  }
  std::vector<std::thread> Threads;
  for (unsigned I = 1; I <= N; ++I) {
    D.onFork(0, I);
    Threads.emplace_back([&, I] {
      ThreadId Tid = I;
      for (unsigned K = 0; K != 800; ++K) {
        D.onAcquire(Tid, 100 + Tid);
        VarId V{static_cast<ObjectId>(200 + Tid), K % 4};
        if (D.onWrite(Tid, V))
          Reports.fetch_add(1);
        if (D.onRead(Tid, V))
          Reports.fetch_add(1);
        D.onRelease(Tid, 100 + Tid);
      }
      D.onTerminate(Tid);
      D.onThreadExit(Tid);
    });
  }
  for (unsigned I = 1; I <= N; ++I) {
    Threads[I - 1].join();
    D.onJoin(0, I);
  }
  D.onTerminate(0);
  Sup.stop();

  EXPECT_EQ(Reports.load(), 0u)
      << "supervision pressure caused a false alarm on race-free traffic";
  EXPECT_GT(Sup.samples(), 0u);
  EXPECT_TRUE(D.engine().quiesce());
}
