//===- tests/FailpointTest.cpp - Fault-injection framework tests ----------===//
///
/// Unit tests for the deterministic failpoint framework: disarmed sites are
/// inert, decisions are a pure function of (seed, site, evaluation index),
/// rates behave like rates, and the RAII scope arms/disarms correctly.
///
//===----------------------------------------------------------------------===//

#include "support/Failpoints.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

using namespace gold;

namespace {

std::vector<bool> decisions(Failpoint F, unsigned N) {
  std::vector<bool> Out;
  Out.reserve(N);
  for (unsigned I = 0; I != N; ++I)
    Out.push_back(failpoint(F));
  return Out;
}

} // namespace

TEST(FailpointTest, DisarmedIsInert) {
  ASSERT_FALSE(Failpoints::armed());
  for (unsigned I = 0; I != 1000; ++I)
    EXPECT_FALSE(failpoint(Failpoint::EngineCellAlloc));
  // Disarmed evaluations do not even touch the counters.
  EXPECT_EQ(Failpoints::instance().evaluations(Failpoint::EngineCellAlloc),
            0u);
}

TEST(FailpointTest, ScopeArmsAndDisarms) {
  ASSERT_FALSE(Failpoints::armed());
  {
    FailpointScope Scope(FailpointConfig{});
    EXPECT_TRUE(Failpoints::armed());
  }
  EXPECT_FALSE(Failpoints::armed());
}

TEST(FailpointTest, ZeroRateNeverFiresButCounts) {
  FailpointConfig C;
  FailpointScope Scope(C);
  for (unsigned I = 0; I != 500; ++I)
    EXPECT_FALSE(failpoint(Failpoint::StmLockConflict));
  EXPECT_EQ(Failpoints::instance().evaluations(Failpoint::StmLockConflict),
            500u);
  EXPECT_EQ(Failpoints::instance().fires(Failpoint::StmLockConflict), 0u);
}

TEST(FailpointTest, FullRateAlwaysFires) {
  FailpointConfig C;
  C.rate(Failpoint::EngineInfoAlloc, 1000000);
  FailpointScope Scope(C);
  for (unsigned I = 0; I != 200; ++I)
    EXPECT_TRUE(failpoint(Failpoint::EngineInfoAlloc));
  EXPECT_EQ(Failpoints::instance().fires(Failpoint::EngineInfoAlloc), 200u);
}

TEST(FailpointTest, SameSeedSameDecisions) {
  FailpointConfig C;
  C.Seed = 1234;
  C.rate(Failpoint::EngineCellAlloc, 100000); // 10%
  std::vector<bool> First, Second;
  {
    FailpointScope Scope(C);
    First = decisions(Failpoint::EngineCellAlloc, 2000);
  }
  {
    FailpointScope Scope(C);
    Second = decisions(Failpoint::EngineCellAlloc, 2000);
  }
  EXPECT_EQ(First, Second);
}

TEST(FailpointTest, DifferentSeedsDiffer) {
  FailpointConfig A, B;
  A.Seed = 1;
  B.Seed = 2;
  A.rate(Failpoint::EngineCellAlloc, 100000);
  B.rate(Failpoint::EngineCellAlloc, 100000);
  std::vector<bool> First, Second;
  {
    FailpointScope Scope(A);
    First = decisions(Failpoint::EngineCellAlloc, 2000);
  }
  {
    FailpointScope Scope(B);
    Second = decisions(Failpoint::EngineCellAlloc, 2000);
  }
  EXPECT_NE(First, Second);
}

TEST(FailpointTest, SitesAreIndependent) {
  FailpointConfig C;
  C.Seed = 7;
  C.rate(Failpoint::EngineCellAlloc, 100000)
      .rate(Failpoint::EngineInfoAlloc, 100000);
  FailpointScope Scope(C);
  std::vector<bool> A = decisions(Failpoint::EngineCellAlloc, 2000);
  std::vector<bool> B = decisions(Failpoint::EngineInfoAlloc, 2000);
  EXPECT_NE(A, B); // same seed and rate, different site hash
}

TEST(FailpointTest, RateIsApproximatelyHonored) {
  FailpointConfig C;
  C.Seed = 99;
  C.rate(Failpoint::VmPreempt, 100000); // 10%
  FailpointScope Scope(C);
  unsigned Fired = 0;
  for (unsigned I = 0; I != 20000; ++I)
    Fired += failpoint(Failpoint::VmPreempt) ? 1 : 0;
  // Deterministic given the seed; generous bounds document intent.
  EXPECT_GT(Fired, 20000u * 8 / 100);
  EXPECT_LT(Fired, 20000u * 12 / 100);
}

TEST(FailpointTest, ArmResetsCounters) {
  FailpointConfig C;
  C.rate(Failpoint::EngineGcStall, 1000000);
  {
    FailpointScope Scope(C);
    (void)failpoint(Failpoint::EngineGcStall);
  }
  EXPECT_EQ(Failpoints::instance().fires(Failpoint::EngineGcStall), 1u);
  {
    FailpointScope Scope(C); // arm() zeroes the counters
    EXPECT_EQ(Failpoints::instance().fires(Failpoint::EngineGcStall), 0u);
  }
}

TEST(FailpointTest, NamesAreStableAndUnique) {
  std::set<std::string> Names;
  for (unsigned I = 0; I != NumFailpoints; ++I) {
    const char *N = failpointName(static_cast<Failpoint>(I));
    ASSERT_NE(N, nullptr);
    EXPECT_STRNE(N, "?");
    Names.insert(N);
  }
  EXPECT_EQ(Names.size(), NumFailpoints);
}
