//===- tests/VmTest.cpp - MiniJVM interpreter tests -----------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "vm/Builder.h"
#include "vm/Vm.h"
#include "support/Failpoints.h"

#include <gtest/gtest.h>

using namespace gold;

namespace {

/// Builds a program computing G0 = A + B * C with constants.
Program arithmeticProgram() {
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("result");
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), B = F.newReg(), C = F.newReg();
  F.constI(A, 7).constI(B, 6).constI(C, 5);
  F.mulI(B, B, C).addI(A, A, B).putG(G0, A).retVoid();
  PB.setMain(F.id());
  return PB.take();
}

} // namespace

TEST(VmTest, ArithmeticAndGlobals) {
  Program P = arithmeticProgram();
  Vm V(P);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(0), 37u);
  EXPECT_GT(V.stats().Instructions, 0u);
}

TEST(VmTest, DoubleArithmetic) {
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("result");
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), B = F.newReg();
  F.constD(A, 2.25).constD(B, 4.0).mulD(A, A, B).sqrtD(A, A);
  F.putG(G0, A).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  V.run();
  EXPECT_DOUBLE_EQ(V.globalD(0), 3.0);
}

TEST(VmTest, LoopsAndBranches) {
  // sum 1..10 via a loop.
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("sum");
  FunctionBuilder F = PB.function("main", 0);
  Reg I = F.newReg(), N = F.newReg(), Sum = F.newReg(), Cond = F.newReg(),
      One = F.newReg();
  F.constI(I, 1).constI(N, 10).constI(Sum, 0).constI(One, 1);
  Label Loop = F.label(), Done = F.label();
  F.bind(Loop);
  F.cmpLeI(Cond, I, N).jz(Cond, Done);
  F.addI(Sum, Sum, I).addI(I, I, One).jmp(Loop);
  F.bind(Done);
  F.putG(G0, Sum).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  V.run();
  EXPECT_EQ(V.global(0), 55u);
}

TEST(VmTest, CallsReturnValues) {
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("out");
  // square(x) = x * x
  FunctionBuilder Sq = PB.function("square", 1);
  {
    Reg X = Sq.param(0), R = Sq.newReg();
    Sq.mulI(R, X, X).ret(R);
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), B = F.newReg();
  F.constI(A, 9).call(B, Sq.id(), {A}).putG(G0, B).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  V.run();
  EXPECT_EQ(V.global(0), 81u);
}

TEST(VmTest, RecursionWorks) {
  // fib(n) classic double recursion.
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("fib");
  FunctionBuilder Fib = PB.function("fib", 1);
  {
    Reg N = Fib.param(0), Two = Fib.newReg(), C = Fib.newReg(),
        T1 = Fib.newReg(), T2 = Fib.newReg(), One = Fib.newReg();
    Label Rec = Fib.label();
    Fib.constI(Two, 2).cmpLtI(C, N, Two).jz(C, Rec).ret(N);
    Fib.bind(Rec);
    Fib.constI(One, 1).subI(T1, N, One).call(T1, Fib.id(), {T1});
    Fib.subI(T2, N, Two).call(T2, Fib.id(), {T2});
    Fib.addI(T1, T1, T2).ret(T1);
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), B = F.newReg();
  F.constI(A, 10).call(B, Fib.id(), {A}).putG(G0, B).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  V.run();
  EXPECT_EQ(V.global(0), 55u);
}

TEST(VmTest, ObjectsAndFields) {
  ProgramBuilder PB;
  ClassId Box = PB.addClass("Box", {{"a", false}, {"b", false}});
  uint32_t G0 = PB.addGlobal("out");
  FunctionBuilder F = PB.function("main", 0);
  Reg O = F.newReg(), V1 = F.newReg(), V2 = F.newReg();
  F.newObj(O, Box).constI(V1, 11).putField(O, 0, V1);
  F.constI(V1, 22).putField(O, 1, V1);
  F.getField(V2, O, 0).getField(V1, O, 1).addI(V1, V1, V2);
  F.putG(G0, V1).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  V.run();
  EXPECT_EQ(V.global(0), 33u);
  EXPECT_EQ(V.stats().Allocations, 2u); // globals object + box
}

TEST(VmTest, ArraysLoadStoreLen) {
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("sum");
  FunctionBuilder F = PB.function("main", 0);
  Reg Arr = F.newReg(), Len = F.newReg(), I = F.newReg(), Sum = F.newReg(),
      C = F.newReg(), One = F.newReg(), V1 = F.newReg();
  F.constI(Len, 8).newArr(Arr, Len).constI(I, 0).constI(One, 1);
  Label Fill = F.label(), Fill2 = F.label(), SumL = F.label(),
        Done = F.label();
  F.bind(Fill);
  F.cmpLtI(C, I, Len).jz(C, Fill2);
  F.mulI(V1, I, I).astore(Arr, I, V1).addI(I, I, One).jmp(Fill);
  F.bind(Fill2);
  F.constI(I, 0).constI(Sum, 0);
  F.bind(SumL);
  F.alen(V1, Arr).cmpLtI(C, I, V1).jz(C, Done);
  F.aload(V1, Arr, I).addI(Sum, Sum, V1).addI(I, I, One).jmp(SumL);
  F.bind(Done);
  F.putG(G0, Sum).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  V.run();
  EXPECT_EQ(V.global(0), 140u); // sum of squares 0..7
}

TEST(VmTest, NullPointerExceptionIsCatchable) {
  ProgramBuilder PB;
  uint32_t G0 = PB.addGlobal("caught");
  FunctionBuilder F = PB.function("main", 0);
  Reg O = F.newReg(), V1 = F.newReg();
  Label H = F.label(), End = F.label();
  F.tryPush(H, VmException::NullPointer);
  F.constI(O, 0).getField(V1, O, 0); // deref null
  F.jmp(End);
  F.bind(H);
  F.getExc(V1).putG(G0, V1);
  F.bind(End);
  F.retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(0),
            static_cast<uint64_t>(VmException::NullPointer));
}

TEST(VmTest, UncaughtExceptionKillsThread) {
  ProgramBuilder PB;
  FunctionBuilder F = PB.function("main", 0);
  F.throwExc(VmException::UserError);
  PB.setMain(F.id());
  Vm V(PB.take());
  EXPECT_EQ(V.run(), -1);
  ASSERT_EQ(V.uncaught().size(), 1u);
  EXPECT_EQ(V.uncaught()[0].second, VmException::UserError);
}

TEST(VmTest, DivByZeroRaises) {
  ProgramBuilder PB;
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), B = F.newReg();
  F.constI(A, 1).constI(B, 0).divI(A, A, B).retVoid();
  PB.setMain(F.id());
  Vm V(PB.take());
  EXPECT_EQ(V.run(), -1);
}

TEST(VmTest, ThreadsForkJoinAndShareData) {
  // Each of 4 workers writes its id into its array slot; main sums.
  ProgramBuilder PB;
  uint32_t GArr = PB.addGlobal("arr");
  uint32_t GSum = PB.addGlobal("sum");
  FunctionBuilder W = PB.function("worker", 1, /*IsThreadEntry=*/true);
  {
    Reg Id = W.param(0), Arr = W.newReg();
    W.getG(Arr, GArr).astore(Arr, Id, Id).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg Arr = F.newReg(), N = F.newReg(), I = F.newReg(), C = F.newReg(),
      One = F.newReg(), T = F.newReg(), Tids = F.newReg(), Sum = F.newReg(),
      V1 = F.newReg();
  F.constI(N, 4).newArr(Arr, N).putG(GArr, Arr).newArr(Tids, N);
  F.constI(I, 0).constI(One, 1);
  Label Spawn = F.label(), JoinL = F.label(), SumL = F.label(),
        Done = F.label(), Spawned = F.label(), Joined = F.label();
  F.bind(Spawn);
  F.cmpLtI(C, I, N).jz(C, Spawned);
  F.fork(T, W.id(), {I}).astore(Tids, I, T).addI(I, I, One).jmp(Spawn);
  F.bind(Spawned);
  F.constI(I, 0);
  F.bind(JoinL);
  F.cmpLtI(C, I, N).jz(C, Joined);
  F.aload(T, Tids, I).join(T).addI(I, I, One).jmp(JoinL);
  F.bind(Joined);
  F.constI(I, 0).constI(Sum, 0);
  F.bind(SumL);
  F.cmpLtI(C, I, N).jz(C, Done);
  F.aload(V1, Arr, I).addI(Sum, Sum, V1).addI(I, I, One).jmp(SumL);
  F.bind(Done);
  F.putG(GSum, Sum).retVoid();
  PB.setMain(F.id());

  Program P = PB.take();
  // Run with the Goldilocks engine attached: fork/join discipline makes
  // this race-free, so the detector must stay silent.
  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(P, Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(GSum), 6u); // 0+1+2+3
  EXPECT_EQ(V.stats().ThreadsStarted, 4u);
  EXPECT_TRUE(V.raceLog().empty());
}

TEST(VmTest, MonitorsProvideMutualExclusion) {
  // 4 threads increment a shared counter 500 times under a lock.
  ProgramBuilder PB;
  ClassId LockCls = PB.addClass("Lock", {{"pad", false}});
  uint32_t GLock = PB.addGlobal("lock");
  uint32_t GCnt = PB.addGlobal("count");
  FunctionBuilder W = PB.function("worker", 0, /*IsThreadEntry=*/true);
  {
    Reg L = W.newReg(), C = W.newReg(), I = W.newReg(), N = W.newReg(),
        One = W.newReg(), Cond = W.newReg();
    W.constI(I, 0).constI(N, 500).constI(One, 1);
    Label Loop = W.label(), Done = W.label();
    W.bind(Loop);
    W.cmpLtI(Cond, I, N).jz(Cond, Done);
    W.getG(L, GLock).monEnter(L);
    W.getG(C, GCnt).addI(C, C, One).putG(GCnt, C);
    W.monExit(L);
    W.addI(I, I, One).jmp(Loop);
    W.bind(Done);
    W.retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg L = F.newReg(), T1 = F.newReg(), T2 = F.newReg(), T3 = F.newReg(),
      T4 = F.newReg();
  F.newObj(L, LockCls).putG(GLock, L);
  F.fork(T1, W.id()).fork(T2, W.id()).fork(T3, W.id()).fork(T4, W.id());
  F.join(T1).join(T2).join(T3).join(T4).retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(GCnt), 2000u);
  EXPECT_TRUE(V.raceLog().empty()) << V.raceLog()[0].str();
  EXPECT_GT(V.stats().MonitorOps, 0u);
}

TEST(VmTest, RacyProgramDetectedAndExceptionCatchable) {
  // Two threads write the same global with no synchronization; the second
  // writer gets a DataRaceException, which it catches and records.
  ProgramBuilder PB;
  uint32_t GData = PB.addGlobal("data");
  uint32_t GCaught = PB.addGlobal("caught");
  FunctionBuilder W = PB.function("writer", 0, true);
  {
    Reg V1 = W.newReg();
    Label H = W.label(), End = W.label();
    W.tryPush(H, VmException::DataRace);
    W.constI(V1, 5).putG(GData, V1);
    W.jmp(End);
    W.bind(H);
    W.constI(V1, 1).putG(GCaught, V1).noCheck();
    W.bind(End);
    W.retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg T1 = F.newReg(), T2 = F.newReg();
  F.fork(T1, W.id()).fork(T2, W.id());
  F.join(T1).join(T2).retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Cfg.ThrowDataRaceException = true;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  ASSERT_EQ(V.raceLog().size(), 1u);
  EXPECT_EQ(V.global(GCaught), 1u);
  EXPECT_TRUE(V.uncaught().empty());
}

TEST(VmTest, VolatilePublicationIsRaceFree) {
  // Classic safe publication: writer fills data then sets a volatile flag;
  // reader spins on the flag then reads data.
  ProgramBuilder PB;
  uint32_t GData = PB.addGlobal("data");
  uint32_t GFlag = PB.addGlobal("flag", /*IsVolatile=*/true);
  uint32_t GOut = PB.addGlobal("out");
  FunctionBuilder W = PB.function("writer", 0, true);
  {
    Reg V1 = W.newReg();
    W.constI(V1, 99).putG(GData, V1).constI(V1, 1).putG(GFlag, V1);
    W.retVoid();
  }
  FunctionBuilder R = PB.function("reader", 0, true);
  {
    Reg V1 = R.newReg();
    Label Spin = R.label(), Go = R.label();
    R.bind(Spin);
    R.getG(V1, GFlag).jnz(V1, Go).yield().jmp(Spin);
    R.bind(Go);
    R.getG(V1, GData).putG(GOut, V1).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg T1 = F.newReg(), T2 = F.newReg();
  F.fork(T1, W.id()).fork(T2, R.id()).join(T1).join(T2).retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(GOut), 99u);
  EXPECT_TRUE(V.raceLog().empty()) << V.raceLog()[0].str();
  EXPECT_GT(V.stats().VolatileAccesses, 0u);
}

TEST(VmTest, WaitNotifyProducerConsumer) {
  ProgramBuilder PB;
  ClassId LockCls = PB.addClass("Lock", {{"pad", false}});
  uint32_t GLock = PB.addGlobal("lock");
  uint32_t GReady = PB.addGlobal("ready");
  uint32_t GData = PB.addGlobal("data");
  uint32_t GOut = PB.addGlobal("out");
  FunctionBuilder Prod = PB.function("producer", 0, true);
  {
    Reg L = Prod.newReg(), V1 = Prod.newReg();
    Prod.getG(L, GLock).monEnter(L);
    Prod.constI(V1, 123).putG(GData, V1);
    Prod.constI(V1, 1).putG(GReady, V1);
    Prod.notifyAll(L).monExit(L).retVoid();
  }
  FunctionBuilder Cons = PB.function("consumer", 0, true);
  {
    Reg L = Cons.newReg(), V1 = Cons.newReg();
    Label Check = Cons.label(), Go = Cons.label();
    Cons.getG(L, GLock).monEnter(L);
    Cons.bind(Check);
    Cons.getG(V1, GReady).jnz(V1, Go);
    Cons.wait(L).jmp(Check);
    Cons.bind(Go);
    Cons.getG(V1, GData).putG(GOut, V1);
    Cons.monExit(L).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg L = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
  F.newObj(L, LockCls).putG(GLock, L);
  F.fork(T1, Cons.id()).fork(T2, Prod.id());
  F.join(T1).join(T2).retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(GOut), 123u);
  EXPECT_TRUE(V.raceLog().empty()) << V.raceLog()[0].str();
}

TEST(VmTest, TransactionsCommitAndCount) {
  // Two threads transfer between two accounts transactionally.
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GA = PB.addGlobal("a"), GB = PB.addGlobal("b");
  FunctionBuilder W = PB.function("mover", 1, true);
  {
    Reg Dir = W.param(0), A = W.newReg(), B = W.newReg(), V1 = W.newReg(),
        V2 = W.newReg(), I = W.newReg(), N = W.newReg(), One = W.newReg(),
        C = W.newReg();
    W.constI(I, 0).constI(N, 50).constI(One, 1);
    Label Loop = W.label(), Done = W.label();
    W.bind(Loop);
    W.cmpLtI(C, I, N).jz(C, Done);
    W.getG(A, GA).getG(B, GB);
    W.atomicBegin();
    W.getField(V1, A, 0).getField(V2, B, 0);
    W.addI(V1, V1, Dir).subI(V2, V2, Dir);
    W.putField(A, 0, V1).putField(B, 0, V2);
    W.atomicEnd();
    W.addI(I, I, One).jmp(Loop);
    W.bind(Done);
    W.retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), V1 = F.newReg(), T1 = F.newReg(), T2 = F.newReg(),
      D1 = F.newReg(), D2 = F.newReg();
  F.newObj(A, Acc).constI(V1, 100).putField(A, 0, V1).putG(GA, A);
  F.newObj(A, Acc).constI(V1, 100).putField(A, 0, V1).putG(GB, A);
  F.constI(D1, 1).constI(D2, -1);
  F.fork(T1, W.id(), {D1}).fork(T2, W.id(), {D2});
  F.join(T1).join(T2);
  // Total must be conserved.
  F.getG(A, GA).getField(V1, A, 0);
  F.getG(A, GB).getField(D1, A, 0);
  F.addI(V1, V1, D1).putG(GA, V1).retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(GA), 200u);
  EXPECT_EQ(V.stats().TxnCommits, 100u);
  EXPECT_TRUE(V.raceLog().empty()) << V.raceLog()[0].str();
}

TEST(VmTest, Example4MixedLockAndTxnRaces) {
  // The paper's Example 4 on the VM: one thread uses the object lock, the
  // other a transaction; the detector must flag checking.bal.
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GChk = PB.addGlobal("checking"), GSav = PB.addGlobal("savings");
  FunctionBuilder TxnT = PB.function("txn", 0, true);
  {
    Reg S = TxnT.newReg(), C = TxnT.newReg(), V1 = TxnT.newReg(),
        V2 = TxnT.newReg();
    TxnT.getG(S, GSav).getG(C, GChk);
    TxnT.atomicBegin();
    TxnT.getField(V1, S, 0).getField(V2, C, 0);
    TxnT.putField(S, 0, V1).putField(C, 0, V2);
    TxnT.atomicEnd().retVoid();
  }
  FunctionBuilder LockT = PB.function("locker", 0, true);
  {
    Reg C = LockT.newReg(), V1 = LockT.newReg(), Amt = LockT.newReg();
    LockT.getG(C, GChk).monEnter(C);
    LockT.getField(V1, C, 0).constI(Amt, 42).subI(V1, V1, Amt);
    LockT.putField(C, 0, V1);
    LockT.monExit(C).retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), T1 = F.newReg(), T2 = F.newReg();
  F.newObj(A, Acc).putG(GChk, A).newObj(A, Acc).putG(GSav, A);
  // Both threads run concurrently: their accesses to checking.bal are
  // happens-before-unordered whatever the actual schedule, so the verdict
  // is deterministic even though the reporting thread is not.
  F.fork(T1, LockT.id()).fork(T2, TxnT.id());
  F.join(T1).join(T2);
  F.retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  // Exactly checking.bal races: savings.bal is touched only inside the
  // transaction, and the globals are read-shared after main's init (fork
  // edges order them).
  ASSERT_EQ(V.raceLog().size(), 1u);
  EXPECT_EQ(V.raceLog()[0].Var.Field, 0u);
}

TEST(VmTest, TxnConflictsRetryAndStayAtomic) {
  // Heavy contention: 4 threads, one shared account, transactional
  // read-modify-write; the total must be exact.
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GA = PB.addGlobal("a");
  FunctionBuilder W = PB.function("incr", 0, true);
  {
    Reg A = W.newReg(), V1 = W.newReg(), I = W.newReg(), N = W.newReg(),
        One = W.newReg(), C = W.newReg();
    W.constI(I, 0).constI(N, 200).constI(One, 1);
    Label Loop = W.label(), Done = W.label();
    W.bind(Loop);
    W.cmpLtI(C, I, N).jz(C, Done);
    W.getG(A, GA);
    W.atomicBegin();
    W.getField(V1, A, 0).addI(V1, V1, One).putField(A, 0, V1);
    W.atomicEnd();
    W.addI(I, I, One).jmp(Loop);
    W.bind(Done);
    W.retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), V1 = F.newReg(), T1 = F.newReg(), T2 = F.newReg(),
      T3 = F.newReg(), T4 = F.newReg();
  F.newObj(A, Acc).constI(V1, 0).putField(A, 0, V1).putG(GA, A);
  F.fork(T1, W.id()).fork(T2, W.id()).fork(T3, W.id()).fork(T4, W.id());
  F.join(T1).join(T2).join(T3).join(T4);
  F.getG(A, GA).getField(V1, A, 0).putG(GA, V1).retVoid();
  PB.setMain(F.id());

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(PB.take(), Cfg);
  EXPECT_EQ(V.run(), 0);
  EXPECT_EQ(V.global(GA), 800u);
  EXPECT_TRUE(V.raceLog().empty()) << V.raceLog()[0].str();
  EXPECT_EQ(V.stats().TxnCommits, 800u);
}

TEST(VmTest, CheckFlagsSuppressDetection) {
  // The same racy program as above, but with the access sites marked
  // race-free by a (here: deliberately unsound) annotation — the runtime
  // must skip the checks (Section 5.2 mechanism).
  ProgramBuilder PB;
  uint32_t GData = PB.addGlobal("data");
  FunctionBuilder W = PB.function("writer", 0, true);
  {
    Reg V1 = W.newReg();
    W.constI(V1, 5).putG(GData, V1).noCheck();
    W.retVoid();
  }
  FunctionBuilder F = PB.function("main", 0);
  Reg T1 = F.newReg(), T2 = F.newReg();
  F.fork(T1, W.id()).fork(T2, W.id()).join(T1).join(T2).retVoid();
  PB.setMain(F.id());
  Program P = PB.take();

  GoldilocksDetector D;
  VmConfig Cfg;
  Cfg.Detector = &D;
  Vm V(P, Cfg);
  V.run();
  EXPECT_TRUE(V.raceLog().empty());
  EXPECT_EQ(V.stats().CheckedAccesses, 0u);
  EXPECT_EQ(V.stats().DataAccesses, 2u);

  // Field-level flag: clear CheckRace on the global instead.
  Program P2 = P;
  for (auto &F2 : P2.Functions)
    for (auto &In : F2.Code)
      In.Check = true;
  P2.Globals[GData].CheckRace = false;
  GoldilocksDetector D2;
  VmConfig Cfg2;
  Cfg2.Detector = &D2;
  Vm V2(P2, Cfg2);
  V2.run();
  EXPECT_TRUE(V2.raceLog().empty());
  EXPECT_EQ(V2.stats().CheckedAccesses, 0u);

  // HonorCheckFlags=false overrides the annotations: the race reappears.
  GoldilocksDetector D3;
  VmConfig Cfg3;
  Cfg3.Detector = &D3;
  Cfg3.HonorCheckFlags = false;
  Vm V3(P2, Cfg3);
  V3.run();
  EXPECT_EQ(V3.raceLog().size(), 1u);
}

TEST(VmTest, TxnFailureIsCountedWhenRetriesExhaust) {
  // Every STM lock acquisition is forced to conflict by a failpoint, so the
  // transaction can never make progress; after TxnMaxRetries attempts the
  // VM must raise TxnFailure, count it, and terminate the thread cleanly
  // instead of spinning or crashing.
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GA = PB.addGlobal("a");
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), V1 = F.newReg();
  F.newObj(A, Acc).constI(V1, 1).putField(A, 0, V1).putG(GA, A);
  F.atomicBegin();
  F.getField(V1, A, 0);
  F.atomicEnd();
  F.retVoid();
  PB.setMain(F.id());

  VmConfig Cfg;
  Cfg.TxnMaxRetries = 3;
  Vm V(PB.take(), Cfg);

  FailpointConfig FC;
  FC.rate(Failpoint::StmLockConflict, 1000000);
  int64_t Rc;
  {
    FailpointScope Scope(FC);
    Rc = V.run();
  }
  EXPECT_EQ(Rc, -1); // main died with an uncaught exception
  EXPECT_GE(V.stats().TxnFailures, 1u);
  EXPECT_GE(V.stats().TxnConflictRetries, 1u);
  ASSERT_FALSE(V.uncaught().empty());
  EXPECT_EQ(V.uncaught()[0].second, VmException::TxnFailure);
}

TEST(VmTest, TxnRetriesThroughTransientConflicts) {
  // A mid-rate conflict failpoint makes some acquisitions fail, but with a
  // generous retry budget every transaction eventually commits and no
  // TxnFailure is raised.
  ProgramBuilder PB;
  ClassId Acc = PB.addClass("Account", {{"bal", false}});
  uint32_t GA = PB.addGlobal("a");
  FunctionBuilder F = PB.function("main", 0);
  Reg A = F.newReg(), V1 = F.newReg(), I = F.newReg(), N = F.newReg(),
      One = F.newReg(), C = F.newReg();
  F.newObj(A, Acc).constI(V1, 0).putField(A, 0, V1).putG(GA, A);
  F.constI(I, 0).constI(N, 40).constI(One, 1);
  Label Loop = F.label(), Done = F.label();
  F.bind(Loop);
  F.cmpLtI(C, I, N).jz(C, Done);
  F.atomicBegin();
  F.getField(V1, A, 0).addI(V1, V1, One).putField(A, 0, V1);
  F.atomicEnd();
  F.addI(I, I, One).jmp(Loop);
  F.bind(Done);
  F.retVoid();
  PB.setMain(F.id());

  Vm V(PB.take());
  FailpointConfig FC;
  FC.Seed = 11;
  FC.rate(Failpoint::StmLockConflict, 300000); // 30% of acquisitions
  int64_t Rc;
  {
    FailpointScope Scope(FC);
    Rc = V.run();
  }
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(V.stats().TxnFailures, 0u);
  EXPECT_EQ(V.stats().TxnCommits, 40u);
  EXPECT_GT(V.stats().TxnConflictRetries, 0u); // the injection did bite
}
