//===- tests/EngineTest.cpp - optimized engine tests ----------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "event/PaperTraces.h"
#include "event/RandomTrace.h"
#include "hb/HbOracle.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace gold;

TEST(EngineTest, PaperTracesVerdictsMatchReference) {
  auto Check = [](const Trace &T, const char *Name) {
    GoldilocksDetector Engine;
    GoldilocksReferenceDetector Ref;
    auto ER = Engine.runTrace(T);
    auto RR = Ref.runTrace(T);
    ASSERT_EQ(ER.size(), RR.size()) << Name;
    for (size_t I = 0; I != ER.size(); ++I) {
      EXPECT_EQ(ER[I].Var, RR[I].Var) << Name;
      EXPECT_EQ(ER[I].Thread, RR[I].Thread) << Name;
      EXPECT_EQ(ER[I].IsWrite, RR[I].IsWrite) << Name;
    }
  };
  Check(paperExample2Trace(), "example2");
  Check(paperExample3Trace(), "example3");
  Check(paperExample4Trace(false), "example4/withdraw-first");
  Check(paperExample4Trace(true), "example4/txn-first");
  Check(idiomVolatileFlagTrace(), "volatile-flag");
  Check(idiomForkJoinTrace(), "fork-join");
  Check(idiomBarrierTrace(), "barrier");
  Check(idiomUnsyncRacyTrace(), "unsync-racy");
  Check(idiomIndirectHandoffTrace(), "indirect-handoff");
}

TEST(EngineTest, Example2IsRaceFree) {
  GoldilocksDetector D;
  EXPECT_TRUE(D.runTrace(paperExample2Trace()).empty());
}

TEST(EngineTest, Example3IsRaceFree) {
  GoldilocksDetector D;
  EXPECT_TRUE(D.runTrace(paperExample3Trace()).empty());
}

TEST(EngineTest, Example4RacesOnCheckingBal) {
  for (bool TxnFirst : {false, true}) {
    GoldilocksDetector D;
    auto Races = D.runTrace(paperExample4Trace(TxnFirst));
    ASSERT_EQ(Races.size(), 1u);
    EXPECT_EQ(Races[0].Var, (VarId{1, 0}));
  }
}

TEST(EngineTest, SameThreadShortCircuitFires) {
  GoldilocksDetector D;
  TraceBuilder B;
  for (int I = 0; I != 10; ++I)
    B.write(1, 1, 0);
  EXPECT_TRUE(D.runTrace(B.take()).empty());
  EngineStats S = D.engine().stats();
  EXPECT_EQ(S.Sc2SameThread, 9u); // every re-access after the first
  EXPECT_EQ(S.FullWalks, 0u);
}

TEST(EngineTest, ALockShortCircuitFires) {
  GoldilocksDetector D;
  TraceBuilder B;
  B.acq(1, 9).write(1, 1, 0).rel(1, 9);
  B.acq(2, 9).write(2, 1, 0).rel(2, 9);
  EXPECT_TRUE(D.runTrace(B.take()).empty());
  EngineStats S = D.engine().stats();
  EXPECT_EQ(S.Sc3ALock, 1u);
  EXPECT_EQ(S.FullWalks, 0u);
}

TEST(EngineTest, XactShortCircuitFires) {
  GoldilocksDetector D;
  VarId X{1, 0};
  TraceBuilder B;
  B.commit(1, {}, {X});
  B.commit(2, {X}, {});
  EXPECT_TRUE(D.runTrace(B.take()).empty());
  EXPECT_GE(D.engine().stats().Sc1Xact, 1u);
}

TEST(EngineTest, FilteredWalkHandlesDirectHandoff) {
  EngineConfig C;
  C.EnableALockShortCircuit = false; // force the walk path
  GoldilocksDetector D(C);
  TraceBuilder B;
  B.acq(1, 9).write(1, 1, 0).rel(1, 9);
  B.acq(2, 9).write(2, 1, 0).rel(2, 9);
  EXPECT_TRUE(D.runTrace(B.take()).empty());
  EngineStats S = D.engine().stats();
  EXPECT_EQ(S.FilteredWalks, 1u);
  EXPECT_EQ(S.FullWalks, 0u);
}

TEST(EngineTest, IndirectHandoffNeedsFullWalk) {
  GoldilocksDetector D;
  EXPECT_TRUE(D.runTrace(idiomIndirectHandoffTrace()).empty());
  EngineStats S = D.engine().stats();
  // Both transfers (T1 -> T3 and T3 -> T1) go through the intermediary
  // T2's lock operations, which the filtered walk cannot see.
  EXPECT_EQ(S.FullWalks, 2u);
}

TEST(EngineTest, ShortCircuitsDisabledStillCorrect) {
  EngineConfig C;
  C.EnableXactShortCircuit = false;
  C.EnableSameThreadShortCircuit = false;
  C.EnableALockShortCircuit = false;
  C.EnableFilteredWalk = false;
  for (const Trace &T : {paperExample2Trace(), paperExample3Trace(),
                         idiomBarrierTrace(), idiomIndirectHandoffTrace()}) {
    GoldilocksDetector D(C);
    EXPECT_TRUE(D.runTrace(T).empty());
  }
  GoldilocksDetector D(C);
  EXPECT_EQ(D.runTrace(idiomUnsyncRacyTrace()).size(), 1u);
}

TEST(EngineTest, EventListGrowsAndGcTrims) {
  EngineConfig C;
  C.GcThreshold = 0; // manual collection only
  GoldilocksDetector D(C);
  TraceBuilder B;
  B.write(1, 1, 0);
  for (int I = 0; I != 100; ++I)
    B.acq(1, 9).rel(1, 9);
  B.write(1, 1, 0); // advances the variable's Info to the list tail
  EXPECT_TRUE(D.runTrace(B.take()).empty());
  size_t Before = D.engine().eventListLength();
  EXPECT_GT(Before, 200u);
  D.engine().collectGarbage();
  // Everything before the last access's position is unreferenced.
  EXPECT_LT(D.engine().eventListLength(), 4u);
}

TEST(EngineTest, AutomaticGcKeepsListBounded) {
  EngineConfig C;
  C.GcThreshold = 64;
  GoldilocksDetector D(C);
  TraceBuilder B;
  B.write(1, 1, 0);
  for (int I = 0; I != 4000; ++I)
    B.acq(1, 9).rel(1, 9);
  B.write(2, 1, 0); // T2 never synchronized with T1: a race
  auto Races = D.runTrace(B.take());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_LT(D.engine().eventListLength(), 128u);
  EXPECT_GT(D.engine().stats().GcRuns, 0u);
}

TEST(EngineTest, PartiallyEagerEvaluationPreservesVerdicts) {
  // A variable accessed early and then never again anchors the list head;
  // partially-eager evaluation must advance it without changing verdicts.
  EngineConfig Small;
  Small.GcThreshold = 32;
  GoldilocksDetector D(Small);
  GoldilocksReferenceDetector Ref;
  TraceBuilder B;
  B.acq(1, 8).write(1, 1, 0).rel(1, 8); // early access, never repeated...
  for (int I = 0; I != 500; ++I)
    B.acq(2, 9).write(2, 2, 0).rel(2, 9);
  // ... until now: T3 acquires lock 8, so ownership of o1.f0 transfers
  // properly across the long (and by now partially trimmed) window.
  B.acq(3, 8).write(3, 1, 0).rel(3, 8);
  Trace T = B.take();
  auto ER = D.runTrace(T);
  auto RR = Ref.runTrace(T);
  ASSERT_EQ(ER.size(), RR.size());
  EXPECT_TRUE(ER.empty()); // lock 8 protects both accesses
  EXPECT_GT(D.engine().stats().EagerAdvances, 0u);
  EXPECT_GT(D.engine().stats().GcRuns, 0u);
}

TEST(EngineTest, PartiallyEagerEvaluationStillCatchesRaces) {
  EngineConfig Small;
  Small.GcThreshold = 32;
  GoldilocksDetector D(Small);
  TraceBuilder B;
  B.write(1, 1, 0); // unprotected early write
  for (int I = 0; I != 500; ++I)
    B.acq(2, 9).write(2, 2, 0).rel(2, 9);
  B.write(3, 1, 0); // races with T1's write across the trimmed window
  auto Races = D.runTrace(B.take());
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_EQ(Races[0].Var, (VarId{1, 0}));
}

TEST(EngineTest, AllocResetsVariableState) {
  GoldilocksDetector D;
  TraceBuilder B;
  B.write(1, 1, 0).alloc(2, 1, 1).write(2, 1, 0);
  EXPECT_TRUE(D.runTrace(B.take()).empty());
}

TEST(EngineTest, EnableVarReenablesChecking) {
  GoldilocksDetector D;
  TraceBuilder B1;
  B1.write(1, 1, 0).write(2, 1, 0);
  EXPECT_EQ(D.runTrace(B1.take()).size(), 1u);
  TraceBuilder B2;
  B2.write(3, 1, 0);
  EXPECT_TRUE(D.runTrace(B2.take()).empty()); // disabled
  D.engine().enableVar(VarId{1, 0});
  TraceBuilder B3;
  B3.write(4, 1, 0).write(5, 1, 0);
  EXPECT_EQ(D.runTrace(B3.take()).size(), 1u);
}

TEST(EngineTest, StatsCountAccessesAndSyncEvents) {
  GoldilocksDetector D;
  TraceBuilder B;
  B.write(1, 1, 0).read(1, 1, 0).acq(1, 9).rel(1, 9);
  B.commit(1, {VarId{1, 1}}, {});
  D.runTrace(B.take());
  EngineStats S = D.engine().stats();
  EXPECT_EQ(S.Accesses, 3u); // write, read, commit's read
  EXPECT_EQ(S.SyncEvents, 3u); // acq, rel, commit
  EXPECT_EQ(S.Commits, 1u);
}

TEST(EngineTest, ConcurrentHammeringIsSafeAndSound) {
  // Many real threads hammer the engine: per-thread-private variables plus
  // a properly locked shared variable must stay race-free; an unprotected
  // shared variable must be reported exactly once.
  EngineConfig C;
  C.GcThreshold = 256;
  GoldilocksEngine E(C);
  constexpr int NumThreads = 4, Iters = 3000;
  std::atomic<int> SafeRaces{0}, UnsafeRaces{0};
  std::vector<std::thread> Threads;
  for (int T = 1; T <= NumThreads; ++T)
    Threads.emplace_back([&, T] {
      ThreadId Tid = static_cast<ThreadId>(T);
      VarId Priv{static_cast<ObjectId>(100 + T), 0};
      VarId Shared{50, 0}, Racy{60, 0};
      for (int I = 0; I != Iters; ++I) {
        if (E.onWrite(Tid, Priv))
          SafeRaces++;
        E.onAcquire(Tid, 50);
        if (E.onWrite(Tid, Shared))
          SafeRaces++;
        E.onRelease(Tid, 50);
        if (E.onWrite(Tid, Racy))
          UnsafeRaces++;
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(SafeRaces.load(), 0);
  EXPECT_EQ(UnsafeRaces.load(), 1); // reported once, then disabled
  EXPECT_GT(E.stats().GcRuns, 0u);
}

//===----------------------------------------------------------------------===//
// GC / partially-eager advance invariants (Section 5.4)
//===----------------------------------------------------------------------===//

namespace {

/// Per-step replay of a trace so invariants can be asserted between events.
void replayOne(RaceDetector &D, const Trace &T, const Action &A,
               std::vector<RaceReport> &Out) {
  switch (A.Kind) {
  case ActionKind::Alloc:
    D.onAlloc(A.Thread, A.Var.Object, A.Var.Field);
    break;
  case ActionKind::Read:
    if (auto R = D.onRead(A.Thread, A.Var))
      Out.push_back(*R);
    break;
  case ActionKind::Write:
    if (auto R = D.onWrite(A.Thread, A.Var))
      Out.push_back(*R);
    break;
  case ActionKind::VolatileRead:
    D.onVolatileRead(A.Thread, A.Var);
    break;
  case ActionKind::VolatileWrite:
    D.onVolatileWrite(A.Thread, A.Var);
    break;
  case ActionKind::Acquire:
    D.onAcquire(A.Thread, A.Var.Object);
    break;
  case ActionKind::Release:
    D.onRelease(A.Thread, A.Var.Object);
    break;
  case ActionKind::Fork:
    D.onFork(A.Thread, A.Target);
    break;
  case ActionKind::Join:
    D.onJoin(A.Thread, A.Target);
    break;
  case ActionKind::Commit: {
    auto Races = D.onCommit(A.Thread, T.commitSets(A));
    Out.insert(Out.end(), Races.begin(), Races.end());
    break;
  }
  case ActionKind::Terminate:
    D.onTerminate(A.Thread);
    break;
  }
}

Trace gcStressTrace(uint64_t Seed, unsigned TxnWeight = 1) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 4;
  P.NumObjects = 4;
  P.StepsPerThread = 150;
  P.WAcquire = 5;
  P.WRelease = 5;
  P.WBeginTxn = TxnWeight;
  return generateRandomTrace(P);
}

std::vector<VarId> sortedRacyVars(const std::vector<RaceReport> &Races) {
  std::set<VarId> S;
  for (const RaceReport &R : Races)
    S.insert(R.Var);
  return std::vector<VarId>(S.begin(), S.end());
}

} // namespace

TEST(EngineTest, TinyGcThresholdBoundsListAtEveryStep) {
  for (uint64_t Seed : {3u, 14u, 15u}) {
    Trace T = gcStressTrace(Seed);
    EngineConfig C;
    C.GcThreshold = 32;
    GoldilocksDetector D(C);
    std::vector<RaceReport> Races;
    for (const Action &A : T.Actions) {
      replayOne(D, T, A, Races);
      // One sync event may land before maybeCollect runs, and one GC pass
      // trims only a fraction, but the length can never run away.
      ASSERT_LT(D.engine().eventListLength(), 2 * C.GcThreshold)
          << "seed " << Seed;
    }
    EXPECT_GT(D.engine().stats().GcRuns, 0u) << "GC never engaged";
  }
}

TEST(EngineTest, EagerAdvanceLeavesVerdictsUnchanged) {
  // The same trace replayed under every collection regime — from "never
  // collect" to "collect constantly" — must produce the same race set in
  // the same order as the default engine.
  for (uint64_t Seed : {9u, 26u, 53u}) {
    Trace T = gcStressTrace(Seed);
    GoldilocksDetector Base;
    auto Want = Base.runTrace(T);
    for (size_t Threshold : {size_t(0), size_t(16), size_t(48), size_t(4096)}) {
      EngineConfig C;
      C.GcThreshold = Threshold;
      GoldilocksDetector D(C);
      auto Got = D.runTrace(T);
      ASSERT_EQ(Got.size(), Want.size())
          << "seed " << Seed << " threshold " << Threshold;
      for (size_t I = 0; I != Got.size(); ++I) {
        EXPECT_EQ(Got[I].Var, Want[I].Var) << "seed " << Seed;
        EXPECT_EQ(Got[I].Thread, Want[I].Thread) << "seed " << Seed;
      }
    }
  }
}

TEST(EngineTest, TinyGcThresholdStaysExactOnTxnHeavyTraces) {
  // Commit processing anchors its checks at the commit cell; aggressive
  // collection must never advance a record past a pending anchor, so the
  // verdict stays equal to the oracle even on transaction-heavy traces.
  for (uint64_t Seed : {2u, 21u, 34u}) {
    Trace T = gcStressTrace(Seed, /*TxnWeight=*/4);
    EngineConfig C;
    C.GcThreshold = 16;
    GoldilocksDetector D(C);
    auto Races = D.runTrace(T);
    RaceOracle O(T);
    std::set<VarId> Want(O.racyVars().begin(), O.racyVars().end());
    std::vector<VarId> WantSorted(Want.begin(), Want.end());
    EXPECT_EQ(sortedRacyVars(Races), WantSorted) << "seed " << Seed;
  }
}

TEST(EngineTest, GcHighWaterAndHealthAgree) {
  Trace T = gcStressTrace(6);
  EngineConfig C;
  C.GcThreshold = 32;
  GoldilocksDetector D(C);
  (void)D.runTrace(T);
  EngineHealth H = D.engine().health();
  EXPECT_GE(H.EventListHighWater, H.EventListLength);
  EXPECT_LE(H.EventListLength, D.engine().eventListLength());
  EXPECT_GT(D.engine().stats().GcRuns, 0u);
  // Plain GC is not degradation: the governor ladder must be untouched.
  EXPECT_EQ(H.DegradationLevel, 0u);
  EXPECT_EQ(H.ForcedGcs, 0u);
}
