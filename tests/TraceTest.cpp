//===- tests/TraceTest.cpp - event model unit tests -----------------------===//

#include "event/PaperTraces.h"
#include "event/Trace.h"

#include <gtest/gtest.h>

using namespace gold;

TEST(VarIdTest, EqualityAndOrdering) {
  VarId A{1, 2}, B{1, 2}, C{1, 3}, D{2, 0};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_LT(A, C);
  EXPECT_LT(C, D);
}

TEST(VarIdTest, KeyPacksBothComponents) {
  EXPECT_NE((VarId{1, 2}.key()), (VarId{2, 1}.key()));
  EXPECT_EQ((VarId{3, 4}.key()), (VarId{3, 4}.key()));
}

TEST(VarIdTest, StrRendersLockField) {
  EXPECT_EQ((VarId{3, 1}).str(), "o3.f1");
  EXPECT_EQ(lockVar(3).str(), "o3.lock");
}

TEST(ActionTest, SyncKindClassification) {
  EXPECT_TRUE(isSyncKind(ActionKind::Acquire));
  EXPECT_TRUE(isSyncKind(ActionKind::Release));
  EXPECT_TRUE(isSyncKind(ActionKind::VolatileRead));
  EXPECT_TRUE(isSyncKind(ActionKind::VolatileWrite));
  EXPECT_TRUE(isSyncKind(ActionKind::Fork));
  EXPECT_TRUE(isSyncKind(ActionKind::Join));
  EXPECT_TRUE(isSyncKind(ActionKind::Commit));
  EXPECT_FALSE(isSyncKind(ActionKind::Read));
  EXPECT_FALSE(isSyncKind(ActionKind::Write));
  EXPECT_FALSE(isSyncKind(ActionKind::Alloc));
}

TEST(TraceBuilderTest, BuildsActionsInOrder) {
  TraceBuilder B;
  B.alloc(0, 1, 2).write(0, 1, 0).acq(0, 2).rel(0, 2).read(1, 1, 0);
  Trace T = B.take();
  ASSERT_EQ(T.Actions.size(), 5u);
  EXPECT_EQ(T.Actions[0].Kind, ActionKind::Alloc);
  EXPECT_EQ(T.Actions[1].Kind, ActionKind::Write);
  EXPECT_EQ(T.Actions[2].Kind, ActionKind::Acquire);
  EXPECT_EQ(T.Actions[2].Var, lockVar(2));
  EXPECT_EQ(T.Actions[4].Thread, 1u);
}

TEST(TraceBuilderTest, CommitSetsRoundTrip) {
  TraceBuilder B;
  VarId X{1, 0}, Y{2, 1};
  B.commit(3, {X}, {Y});
  Trace T = B.take();
  ASSERT_EQ(T.Actions.size(), 1u);
  const CommitSets &CS = T.commitSets(T.Actions[0]);
  EXPECT_TRUE(CS.touches(X));
  EXPECT_TRUE(CS.touches(Y));
  EXPECT_FALSE(CS.touches(VarId{9, 9}));
  EXPECT_TRUE(CS.writes(Y));
  EXPECT_FALSE(CS.writes(X));
}

TEST(TraceTest, ThreadAndObjectCounts) {
  Trace T = paperExample2Trace();
  EXPECT_EQ(T.threadCount(), 4u); // T0 unused but T3 present
  EXPECT_EQ(T.objectCount(), 4u); // Globals, O, MA, MB
}

TEST(TraceTest, AccessesCoversCommits) {
  Trace T = paperExample3Trace();
  // Action 2 is T1's commit writing o.nxt and head.
  ASSERT_EQ(T.Actions[2].Kind, ActionKind::Commit);
  EXPECT_TRUE(T.accesses(2, paper::oNxt()));
  EXPECT_TRUE(T.accesses(2, paper::head()));
  EXPECT_FALSE(T.accesses(2, paper::oData()));
  // Action 1 is the plain write to o.data.
  EXPECT_TRUE(T.accesses(1, paper::oData()));
}

TEST(TraceTest, StrMentionsEveryAction) {
  Trace T = paperExample4Trace(/*TxnFirst=*/true);
  std::string S = T.str();
  EXPECT_NE(S.find("commit"), std::string::npos);
  EXPECT_NE(S.find("acq"), std::string::npos);
  EXPECT_NE(S.find("fork"), std::string::npos);
}

TEST(TraceTest, EmptyTraceCountsAreZero) {
  Trace T;
  EXPECT_EQ(T.threadCount(), 0u);
  EXPECT_EQ(T.objectCount(), 0u);
}
