//===- tests/RandomTraceTest.cpp - generator well-formedness tests --------===//
///
/// Well-formedness of the seeded trace generator, checked over the shared
/// differential-harness shapes (sweepParams / chaosParams) so every trace
/// the differential suites replay is known-legal by construction.
///
//===----------------------------------------------------------------------===//

#include "DifferentialHarness.h"

#include <map>
#include <set>

using namespace gold;
using namespace gold::difftest;

namespace {

class RandomTraceTest : public ::testing::TestWithParam<uint64_t> {};

/// Structural legality of a generated trace: lock discipline, fork/join
/// ordering, termination of every worker.
void checkWellFormed(const Trace &T) {
  ASSERT_FALSE(T.Actions.empty());

  std::map<ObjectId, ThreadId> LockOwner;
  std::set<ThreadId> Forked{0};
  std::set<ThreadId> Terminated;

  for (size_t I = 0; I != T.Actions.size(); ++I) {
    const Action &A = T.Actions[I];
    // Every acting thread was forked (main is implicitly alive) and is not
    // yet terminated (except main's trailing joins/reads).
    EXPECT_TRUE(Forked.count(A.Thread)) << "action " << I;
    EXPECT_FALSE(Terminated.count(A.Thread)) << "action " << I;

    switch (A.Kind) {
    case ActionKind::Acquire:
      EXPECT_EQ(LockOwner.count(A.Var.Object), 0u)
          << "double acquire at " << I;
      LockOwner[A.Var.Object] = A.Thread;
      break;
    case ActionKind::Release: {
      auto It = LockOwner.find(A.Var.Object);
      ASSERT_NE(It, LockOwner.end()) << "release without acquire at " << I;
      EXPECT_EQ(It->second, A.Thread) << "release by non-owner at " << I;
      LockOwner.erase(It);
      break;
    }
    case ActionKind::Fork:
      EXPECT_EQ(A.Thread, 0u);
      EXPECT_FALSE(Forked.count(A.Target)) << "double fork at " << I;
      Forked.insert(A.Target);
      break;
    case ActionKind::Join:
      EXPECT_TRUE(Terminated.count(A.Target))
          << "join before termination at " << I;
      break;
    case ActionKind::Terminate:
      Terminated.insert(A.Thread);
      break;
    default:
      break;
    }
  }
  // All locks released at the end.
  EXPECT_TRUE(LockOwner.empty());
  // Every worker terminated.
  for (ThreadId W : Forked) {
    if (W != 0) {
      EXPECT_TRUE(Terminated.count(W));
    }
  }
}

} // namespace

TEST(RandomTraceDeterminism, SameSeedSameTrace) {
  RandomTraceParams P;
  P.Seed = 123;
  Trace A = generateRandomTrace(P);
  Trace B = generateRandomTrace(P);
  ASSERT_EQ(A.Actions.size(), B.Actions.size());
  for (size_t I = 0; I != A.Actions.size(); ++I) {
    EXPECT_EQ(A.Actions[I].Kind, B.Actions[I].Kind);
    EXPECT_EQ(A.Actions[I].Thread, B.Actions[I].Thread);
    EXPECT_EQ(A.Actions[I].Var, B.Actions[I].Var);
  }
}

TEST(RandomTraceDeterminism, DifferentSeedsDiffer) {
  RandomTraceParams P;
  P.Seed = 1;
  Trace A = generateRandomTrace(P);
  P.Seed = 2;
  Trace B = generateRandomTrace(P);
  bool Differs = A.Actions.size() != B.Actions.size();
  for (size_t I = 0; !Differs && I != A.Actions.size(); ++I)
    Differs = !(A.Actions[I].Kind == B.Actions[I].Kind &&
                A.Actions[I].Thread == B.Actions[I].Thread &&
                A.Actions[I].Var == B.Actions[I].Var);
  EXPECT_TRUE(Differs);
}

TEST_P(RandomTraceTest, WellFormed) {
  RandomTraceParams P;
  P.Seed = GetParam();
  P.NumThreads = 2 + static_cast<ThreadId>(P.Seed % 5);
  P.StepsPerThread = 25 + static_cast<unsigned>(P.Seed % 60);
  SCOPED_TRACE(testing::Message() << "ad-hoc shape, seed " << P.Seed);
  checkWellFormed(generateRandomTrace(P));
}

TEST_P(RandomTraceTest, HarnessShapesAreWellFormed) {
  // The shared shapes every differential suite sweeps over must themselves
  // generate legal traces, or the downstream comparisons are meaningless.
  {
    SCOPED_TRACE(testing::Message() << "sweep shape, seed " << GetParam());
    checkWellFormed(generateRandomTrace(sweepParams(GetParam())));
  }
  {
    SCOPED_TRACE(testing::Message() << "chaos shape, seed " << GetParam());
    checkWellFormed(generateRandomTrace(chaosParams(GetParam())));
  }
}

TEST_P(RandomTraceTest, TransactionsAreDataOnly) {
  RandomTraceParams P;
  P.Seed = GetParam() * 3 + 1;
  P.WBeginTxn = 4; // transaction-heavy
  Trace T = generateRandomTrace(P);
  size_t Commits = 0;
  for (const Action &A : T.Actions)
    if (A.Kind == ActionKind::Commit) {
      ++Commits;
      const CommitSets &CS = T.commitSets(A);
      for (VarId V : CS.Reads)
        EXPECT_NE(V.Field, LockField);
      for (VarId V : CS.Writes)
        EXPECT_NE(V.Field, LockField);
    }
  EXPECT_GT(Commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceTest,
                         ::testing::Range<uint64_t>(1, 21));
