//===- tests/LocksetTest.cpp - lockset domain unit tests ------------------===//

#include "goldilocks/Lockset.h"

#include <gtest/gtest.h>

using namespace gold;

TEST(LocksetElemTest, EqualityRespectsKindAndPayload) {
  EXPECT_EQ(LocksetElem::thread(1), LocksetElem::thread(1));
  EXPECT_NE(LocksetElem::thread(1), LocksetElem::thread(2));
  EXPECT_EQ(LocksetElem::txnLock(), LocksetElem::txnLock());
  EXPECT_NE(LocksetElem::volVar(VarId{1, 2}),
            LocksetElem::dataVar(VarId{1, 2}));
  EXPECT_EQ(LocksetElem::lock(3), LocksetElem::volVar(lockVar(3)));
}

TEST(LocksetElemTest, ThreadIdRoundTrips) {
  EXPECT_EQ(LocksetElem::thread(42).threadId(), 42u);
}

TEST(LocksetElemTest, StrRendering) {
  EXPECT_EQ(LocksetElem::thread(2).str(), "T2");
  EXPECT_EQ(LocksetElem::lock(1).str(), "o1.lock");
  EXPECT_EQ(LocksetElem::dataVar(VarId{4, 0}).str(), "o4.f0");
  EXPECT_EQ(LocksetElem::txnLock().str(), "TL");
}

TEST(LocksetTest, InsertAndContains) {
  Lockset LS;
  EXPECT_TRUE(LS.empty());
  EXPECT_TRUE(LS.insert(LocksetElem::thread(1)));
  EXPECT_FALSE(LS.insert(LocksetElem::thread(1))); // duplicate
  EXPECT_TRUE(LS.containsThread(1));
  EXPECT_FALSE(LS.containsThread(2));
  EXPECT_EQ(LS.size(), 1u);
}

TEST(LocksetTest, ResetToOwner) {
  Lockset LS;
  LS.insert(LocksetElem::lock(9));
  LS.resetToOwner(3, /*Xact=*/false);
  EXPECT_EQ(LS.size(), 1u);
  EXPECT_TRUE(LS.containsThread(3));
  LS.resetToOwner(4, /*Xact=*/true);
  EXPECT_EQ(LS.size(), 2u);
  EXPECT_TRUE(LS.containsThread(4));
  EXPECT_TRUE(LS.containsTxnLock());
}

TEST(LocksetTest, IntersectsDataVars) {
  Lockset LS;
  LS.insert(LocksetElem::dataVar(VarId{1, 0}));
  LS.insert(LocksetElem::volVar(VarId{2, 0}));
  EXPECT_TRUE(LS.intersectsDataVars({VarId{1, 0}}));
  // Volatile elements never count as data variables.
  EXPECT_FALSE(LS.intersectsDataVars({VarId{2, 0}}));
  EXPECT_FALSE(LS.intersectsDataVars({VarId{3, 3}}));
  EXPECT_FALSE(LS.intersectsDataVars({}));
}

TEST(LocksetTest, EqualityIsOrderInsensitive) {
  Lockset A, B;
  A.insert(LocksetElem::thread(1));
  A.insert(LocksetElem::lock(2));
  B.insert(LocksetElem::lock(2));
  B.insert(LocksetElem::thread(1));
  EXPECT_EQ(A, B);
  B.insert(LocksetElem::txnLock());
  EXPECT_FALSE(A == B);
}

TEST(LocksetTest, StrPreservesInsertionOrder) {
  Lockset LS;
  LS.insert(LocksetElem::thread(1));
  LS.insert(LocksetElem::lock(2));
  LS.insert(LocksetElem::thread(2));
  EXPECT_EQ(LS.str(), "{T1, o2.lock, T2}");
}
