//===- tests/ConcurrencyTest.cpp - True multi-threaded engine tests -------===//
///
/// Differential testing of the lock-free engine under real concurrency:
/// N OS threads hammer one GoldilocksEngine through the detector interface
/// with idiom mixes in the style of RandomTrace (private data, lock-shared
/// data, volatile publication, deliberate no-sync races, transactions).
/// Every engine call is logged with a global ticket taken while the *real*
/// synchronization that orders it is held, so the serialized log is a legal
/// linearization of the execution. That observed trace is then replayed
/// post-hoc through the HB oracle and the eager reference algorithm — the
/// three verdict sets (racy variables) must agree on every seeded run.
///
/// The workloads are *verdict-stable by construction*: each variable is
/// either race-free under every legal interleaving (lock-protected,
/// thread-private, or published through a fork/join / volatile / lock
/// handoff that the harness enforces with real synchronization) or racy
/// under every legal interleaving (conflicting accesses with no
/// engine-visible synchronization between the threads at all). Scheduling
/// may therefore vary freely without changing the expected answer.
///
/// Named regressions: an ownership-transfer interleaving (lock handoff must
/// not race, real-time-only handoff must race) and a commit-anchor
/// interleaving (GC runs between commitPoint and finishCommit while other
/// threads append — anchor clamping must keep transactional verdicts exact).
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "hb/HbOracle.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace gold;

namespace {

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

/// One logged engine call. Tick is taken adjacent to the call, under the
/// same real synchronization, so sorting by Tick yields a linearization
/// consistent with the extended happens-before order of the execution.
struct LoggedOp {
  uint64_t Tick = 0;
  Action A;
  CommitSets CS; // payload when A.Kind == Commit
};

Action mkAct(ActionKind K, ThreadId T, VarId V = VarId{},
             ThreadId Target = NoThread) {
  Action A;
  A.Kind = K;
  A.Thread = T;
  A.Var = V;
  A.Target = Target;
  return A;
}

/// Per-worker recording: the op log and the race verdicts the engine
/// returned to this thread. Threads only touch their own recorder.
struct Recorder {
  std::vector<LoggedOp> Log;
  std::vector<VarId> ReportedRacy;

  void note(std::optional<RaceReport> R) {
    if (R)
      ReportedRacy.push_back(R->Var);
  }
  void note(const std::vector<RaceReport> &Rs) {
    for (const RaceReport &R : Rs)
      ReportedRacy.push_back(R.Var);
  }
};

/// Shared test state: the detector under test and the global ticket.
struct Harness {
  explicit Harness(EngineConfig C) : Det(C) {}

  GoldilocksDetector Det;
  std::atomic<uint64_t> Ticket{0};

  uint64_t tick() { return Ticket.fetch_add(1, std::memory_order_relaxed); }

  void log(Recorder &R, Action A) { R.Log.push_back({tick(), A, {}}); }
  void logCommit(Recorder &R, ThreadId T, const CommitSets &CS) {
    LoggedOp Op;
    Op.Tick = tick();
    Op.A = mkAct(ActionKind::Commit, T);
    Op.CS = CS;
    R.Log.push_back(std::move(Op));
  }

  // Logged wrappers over the detector interface. The data-access wrappers
  // return the verdict so call sites can also assert locally.
  void alloc(Recorder &R, ThreadId T, ObjectId O, uint32_t Fields) {
    log(R, mkAct(ActionKind::Alloc, T, VarId{O, Fields}));
    Det.onAlloc(T, O, Fields);
  }
  void read(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::Read, T, V));
    R.note(Det.onRead(T, V));
  }
  void write(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::Write, T, V));
    R.note(Det.onWrite(T, V));
  }
  void volRead(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::VolatileRead, T, V));
    Det.onVolatileRead(T, V);
  }
  void volWrite(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::VolatileWrite, T, V));
    Det.onVolatileWrite(T, V);
  }
  void acq(Recorder &R, ThreadId T, ObjectId O) {
    log(R, mkAct(ActionKind::Acquire, T, lockVar(O)));
    Det.onAcquire(T, O);
  }
  void rel(Recorder &R, ThreadId T, ObjectId O) {
    log(R, mkAct(ActionKind::Release, T, lockVar(O)));
    Det.onRelease(T, O);
  }
  void fork(Recorder &R, ThreadId T, ThreadId Child) {
    log(R, mkAct(ActionKind::Fork, T, VarId{}, Child));
    Det.onFork(T, Child);
  }
  void join(Recorder &R, ThreadId T, ThreadId Child) {
    log(R, mkAct(ActionKind::Join, T, VarId{}, Child));
    Det.onJoin(T, Child);
  }
  void terminate(Recorder &R, ThreadId T) {
    log(R, mkAct(ActionKind::Terminate, T));
    Det.onTerminate(T);
  }
  void commitPoint(Recorder &R, ThreadId T, const CommitSets &CS) {
    logCommit(R, T, CS);
    Det.onCommitPoint(T, CS);
  }
  void commitFinish(Recorder &R, ThreadId T, const CommitSets &CS) {
    R.note(Det.onCommitFinish(T, CS));
  }
};

/// Merges the per-thread logs into the observed linearization.
Trace mergeTrace(std::vector<Recorder> &Recs) {
  std::vector<const LoggedOp *> All;
  for (const Recorder &R : Recs)
    for (const LoggedOp &Op : R.Log)
      All.push_back(&Op);
  std::sort(All.begin(), All.end(), [](const LoggedOp *A, const LoggedOp *B) {
    return A->Tick < B->Tick;
  });
  TraceBuilder B;
  for (const LoggedOp *Op : All) {
    if (Op->A.Kind == ActionKind::Commit)
      B.commit(Op->A.Thread, Op->CS.Reads, Op->CS.Writes);
    else
      B.append(Op->A);
  }
  return B.take();
}

std::set<VarId> engineVerdicts(const std::vector<Recorder> &Recs) {
  std::set<VarId> Out;
  for (const Recorder &R : Recs)
    Out.insert(R.ReportedRacy.begin(), R.ReportedRacy.end());
  return Out;
}

std::set<VarId> oracleVerdicts(const Trace &T) {
  RaceOracle O(T);
  std::set<VarId> Out;
  for (const OracleRace &R : O.races())
    Out.insert(R.Var);
  return Out;
}

std::set<VarId> referenceVerdicts(const Trace &T) {
  GoldilocksReferenceDetector Ref;
  std::set<VarId> Out;
  for (const RaceReport &R : Ref.runTrace(T))
    Out.insert(R.Var);
  return Out;
}

/// Post-run engine accounting invariants (quiescent state).
void checkEngineConsistency(GoldilocksEngine &E) {
  EngineStats St = E.stats();
  EngineHealth H = E.health();
  // The sentinel cell plus every allocated-and-not-freed cell is the list.
  EXPECT_EQ(E.eventListLength(), 1 + St.CellsAllocated - St.CellsFreed);
  EXPECT_EQ(H.EventListLength, E.eventListLength());
  EXPECT_GE(H.EventListHighWater, H.EventListLength);
  EXPECT_GE(H.InfoHighWater, H.InfoRecords);
  EXPECT_EQ(H.InfoRecords, E.infoRecordCount());
}

//===----------------------------------------------------------------------===//
// Seeded mixed-idiom fuzz runs
//===----------------------------------------------------------------------===//

// Object-id layout for the fuzz runs (one detector per run).
constexpr ObjectId PrivBase = 100;   // + thread id, 4 fields, thread-private
constexpr ObjectId OwnLockBase = 200; // + thread id, per-thread lock object
constexpr ObjectId PairLockBase = 250; // + pair, lock shared by a pair
constexpr ObjectId SharedBase = 300; // + pair, data guarded by the pair lock
constexpr ObjectId RacyObj = 400;    // field p: pair p's deliberate race
constexpr ObjectId VolObj = 500;     // field p: pair p's volatile flag
constexpr ObjectId PubObj = 600;     // field p: pair p's published payload

/// Runs NumThreads workers over the mixed workload and cross-checks the
/// engine's verdicts against the HB oracle and the reference algorithm.
void runMixedWorkload(unsigned NumThreads, uint64_t Seed) {
  SCOPED_TRACE(testing::Message()
               << "threads=" << NumThreads << " seed=" << Seed);
  EngineConfig C;
  C.GcThreshold = 256; // keep GC + epoch reclamation in play
  Harness H(C);
  std::vector<Recorder> Recs(NumThreads + 1);
  Recorder &Main = Recs[0];

  unsigned NumPairs = NumThreads / 2;
  // Real synchronization backing the harness protocols.
  std::vector<std::mutex> OwnLocks(NumThreads + 1);
  std::vector<std::mutex> PairLocks(NumPairs + 1);
  // One publish flag per pair: 0 = unpublished, 1 = published.
  std::vector<std::atomic<int>> Published(NumPairs + 1);
  for (auto &P : Published)
    P.store(0, std::memory_order_relaxed);

  // Main allocates every object up front, then forks the workers.
  for (unsigned I = 1; I <= NumThreads; ++I) {
    H.alloc(Main, 0, PrivBase + I, 4);
    H.alloc(Main, 0, OwnLockBase + I, 1);
  }
  for (unsigned P = 0; P != NumPairs; ++P) {
    H.alloc(Main, 0, PairLockBase + P, 1);
    H.alloc(Main, 0, SharedBase + P, 4);
  }
  H.alloc(Main, 0, RacyObj, NumPairs ? NumPairs : 1);
  H.alloc(Main, 0, VolObj, NumPairs ? NumPairs : 1);
  H.alloc(Main, 0, PubObj, NumPairs ? NumPairs : 1);

  // Even pairs race on RacyObj.f(pair); odd pairs publish through a
  // volatile and share data under their pair lock.
  std::set<VarId> Expected;
  for (unsigned P = 0; P < NumPairs; P += 2)
    Expected.insert(VarId{RacyObj, P});

  auto Worker = [&](ThreadId Tid) {
    Recorder &R = Recs[Tid];
    Random Rng(Seed * 7919 + Tid);
    unsigned Pair = (Tid - 1) / 2;
    bool HasPair = Pair < NumPairs;
    bool RacyPair = HasPair && (Pair % 2 == 0);
    bool PubPair = HasPair && (Pair % 2 == 1);
    bool Lower = (Tid % 2) == 1; // first thread of its pair
    VarId Priv{PrivBase + Tid, 0};
    bool PublishedMine = false;

    for (unsigned Step = 0; Step != 120; ++Step) {
      switch (Rng.nextBelow(10)) {
      default: { // private data, no synchronization needed
        VarId V{PrivBase + Tid, static_cast<FieldId>(Rng.nextBelow(4))};
        if (Rng.chance(1, 3))
          H.write(R, Tid, V);
        else
          H.read(R, Tid, V);
        break;
      }
      case 7: { // critical section on the thread's own lock
        ObjectId L = OwnLockBase + Tid;
        std::lock_guard<std::mutex> G(OwnLocks[Tid]);
        H.acq(R, Tid, L);
        H.write(R, Tid, Priv);
        H.read(R, Tid, Priv);
        H.rel(R, Tid, L);
        break;
      }
      case 8: { // pair-shared data under the pair lock (race-free)
        if (!PubPair)
          break;
        ObjectId L = PairLockBase + Pair;
        VarId V{SharedBase + Pair, static_cast<FieldId>(Rng.nextBelow(4))};
        std::lock_guard<std::mutex> G(PairLocks[Pair]);
        H.acq(R, Tid, L);
        if (Rng.chance(1, 2))
          H.write(R, Tid, V);
        else
          H.read(R, Tid, V);
        H.rel(R, Tid, L);
        break;
      }
      case 9: { // deliberate no-sync conflict (racy in every schedule)
        if (!RacyPair)
          break;
        VarId V{RacyObj, Pair};
        if (Lower || Rng.chance(1, 2))
          H.write(R, Tid, V);
        else
          H.read(R, Tid, V);
        break;
      }
      }
      // Volatile publication: the lower thread publishes once mid-run; the
      // upper thread consumes once the real flag says the payload (and its
      // volatile-write event) exists.
      if (PubPair && Lower && !PublishedMine && Step > 40) {
        H.write(R, Tid, VarId{PubObj, Pair});
        H.volWrite(R, Tid, VarId{VolObj, Pair});
        Published[Pair].store(1, std::memory_order_release);
        PublishedMine = true;
      }
      if (PubPair && !Lower && Step == 100) {
        while (Published[Pair].load(std::memory_order_acquire) == 0)
          std::this_thread::yield();
        H.volRead(R, Tid, VarId{VolObj, Pair});
        H.read(R, Tid, VarId{PubObj, Pair});
      }
    }
    // Guarantee the conflict for racy pairs even if the random mix never
    // rolled case 9: one unsynchronized write from the lower thread, one
    // unsynchronized read from the upper — unordered in every schedule.
    if (RacyPair) {
      if (Lower)
        H.write(R, Tid, VarId{RacyObj, Pair});
      else
        H.read(R, Tid, VarId{RacyObj, Pair});
    }
    H.terminate(R, Tid);
  };

  std::vector<std::thread> Threads;
  for (unsigned I = 1; I <= NumThreads; ++I) {
    H.fork(Main, 0, I);
    Threads.emplace_back(Worker, static_cast<ThreadId>(I));
  }
  for (unsigned I = 1; I <= NumThreads; ++I) {
    Threads[I - 1].join();
    H.join(Main, 0, I);
  }
  H.terminate(Main, 0);

  Trace Observed = mergeTrace(Recs);
  std::set<VarId> Engine = engineVerdicts(Recs);
  std::set<VarId> Oracle = oracleVerdicts(Observed);
  std::set<VarId> Reference = referenceVerdicts(Observed);

  EXPECT_EQ(Oracle, Expected) << "oracle disagrees with construction";
  EXPECT_EQ(Engine, Oracle) << "engine disagrees with the HB oracle";
  EXPECT_EQ(Reference, Oracle) << "reference disagrees with the HB oracle";
  checkEngineConsistency(H.Det.engine());
}

TEST(ConcurrencyTest, MixedIdiomsMatchOracleAcrossSeeds) {
  for (unsigned Threads : {2u, 4u, 8u})
    for (uint64_t Seed : {1u, 2u, 3u})
      runMixedWorkload(Threads, Seed);
}

//===----------------------------------------------------------------------===//
// Named regression: ownership transfer
//===----------------------------------------------------------------------===//

// Thread 1 initializes a payload without holding any lock, then hands it to
// thread 2 through a lock-protected slot (the classic ownership-transfer
// idiom Goldilocks handles and pure lockset detectors like Eraser flag).
// A second payload is handed over with *real-time ordering only* (a raw
// atomic flag the detector never sees) — that one must race: real-time
// order without a synchronization action is not happens-before.
TEST(ConcurrencyTest, OwnershipTransferHandoff) {
  constexpr ObjectId XObj = 10;   // correctly transferred payload
  constexpr ObjectId YObj = 11;   // real-time-only "transfer" (races)
  constexpr ObjectId Lock = 12;
  constexpr ObjectId SlotObj = 13;

  Harness H((EngineConfig()));
  std::vector<Recorder> Recs(3);
  Recorder &Main = Recs[0];

  std::mutex M;
  bool SlotSet = false; // guarded by M
  std::atomic<bool> BrokenFlag{false};

  H.alloc(Main, 0, XObj, 1);
  H.alloc(Main, 0, YObj, 1);
  H.alloc(Main, 0, Lock, 1);
  H.alloc(Main, 0, SlotObj, 1);

  auto Producer = [&] {
    Recorder &R = Recs[1];
    H.write(R, 1, VarId{XObj, 0}); // init outside any lock
    {
      std::lock_guard<std::mutex> G(M);
      H.acq(R, 1, Lock);
      H.write(R, 1, VarId{SlotObj, 0}); // publish the handle
      SlotSet = true;
      H.rel(R, 1, Lock);
    }
    H.write(R, 1, VarId{YObj, 0});
    BrokenFlag.store(true, std::memory_order_release);
    H.terminate(R, 1);
  };

  auto Consumer = [&] {
    Recorder &R = Recs[2];
    bool Got = false;
    while (!Got) {
      {
        std::lock_guard<std::mutex> G(M);
        H.acq(R, 2, Lock);
        H.read(R, 2, VarId{SlotObj, 0});
        Got = SlotSet;
        H.rel(R, 2, Lock);
      }
      if (!Got)
        std::this_thread::yield();
    }
    // Ordered after the producer's init through the lock handoff chain.
    H.read(R, 2, VarId{XObj, 0});
    // Really-after but with no synchronization action in between: a race.
    while (!BrokenFlag.load(std::memory_order_acquire))
      std::this_thread::yield();
    H.read(R, 2, VarId{YObj, 0});
    H.terminate(R, 2);
  };

  H.fork(Main, 0, 1);
  std::thread T1(Producer);
  H.fork(Main, 0, 2);
  std::thread T2(Consumer);
  T1.join();
  H.join(Main, 0, 1);
  T2.join();
  H.join(Main, 0, 2);
  H.terminate(Main, 0);

  Trace Observed = mergeTrace(Recs);
  std::set<VarId> Expected{VarId{YObj, 0}};
  EXPECT_EQ(oracleVerdicts(Observed), Expected);
  EXPECT_EQ(engineVerdicts(Recs), Expected);
  EXPECT_EQ(referenceVerdicts(Observed), Expected);
  checkEngineConsistency(H.Det.engine());
}

//===----------------------------------------------------------------------===//
// Named regression: commit anchors under concurrent GC
//===----------------------------------------------------------------------===//

// Two committers run two-phase commits (commitPoint under a real mutex so
// conflicting commits enter the synchronization order in serialization
// order, finishCommit outside it), while a plain writer races one of the
// committed variables and a noise thread appends enough synchronization to
// keep threshold-GC running. The collector's advance boundary must clamp at
// pending commit anchors: if it ever advanced an Info past one, the
// finish-phase checks would replay the commit's own rule-9 reset and
// silently bless the race on TXN.f0.
TEST(ConcurrencyTest, CommitAnchorsSurviveConcurrentGc) {
  constexpr ObjectId TxnObj = 20; // f0 raced by the plain writer
  constexpr ObjectId NoiseLock = 21;
  constexpr ObjectId NoisePriv = 22;
  constexpr ObjectId CommitterPriv = 23; // +committer id

  EngineConfig C;
  C.GcThreshold = 64; // force frequent collection during commit windows
  Harness H(C);
  std::vector<Recorder> Recs(5);
  Recorder &Main = Recs[0];

  std::mutex CM; // real serialization of commit points

  H.alloc(Main, 0, TxnObj, 4);
  H.alloc(Main, 0, NoiseLock, 1);
  H.alloc(Main, 0, NoisePriv, 4);
  H.alloc(Main, 0, CommitterPriv + 1, 2);
  H.alloc(Main, 0, CommitterPriv + 2, 2);

  auto Committer = [&](ThreadId Tid) {
    Recorder &R = Recs[Tid];
    Random Rng(40 + Tid);
    for (unsigned I = 0; I != 50; ++I) {
      CommitSets CS;
      CS.Reads.push_back(VarId{TxnObj, 1});
      if (Rng.chance(1, 2))
        CS.Reads.push_back(VarId{TxnObj, 2});
      CS.Writes.push_back(VarId{TxnObj, 0});
      if (Rng.chance(1, 2))
        CS.Writes.push_back(VarId{TxnObj, 3});
      {
        std::lock_guard<std::mutex> G(CM);
        H.commitPoint(R, Tid, CS);
      }
      // Window between point and finish: other threads append events and
      // trigger GC here; the pending anchor must pin the walk window.
      H.write(R, Tid, VarId{CommitterPriv + Tid, 0});
      H.read(R, Tid, VarId{CommitterPriv + Tid, 1});
      H.commitFinish(R, Tid, CS);
    }
    H.terminate(R, Tid);
  };

  auto PlainWriter = [&] {
    Recorder &R = Recs[3];
    for (unsigned I = 0; I != 150; ++I) {
      H.write(R, 3, VarId{TxnObj, 0}); // rule 2: plain write vs commit
      H.read(R, 3, VarId{NoisePriv, 3});
    }
    H.terminate(R, 3);
  };

  auto Noise = [&] {
    Recorder &R = Recs[4];
    std::mutex Local;
    for (unsigned I = 0; I != 300; ++I) {
      std::lock_guard<std::mutex> G(Local);
      H.acq(R, 4, NoiseLock);
      H.write(R, 4, VarId{NoisePriv, 0});
      H.rel(R, 4, NoiseLock);
    }
    H.terminate(R, 4);
  };

  std::vector<std::thread> Threads;
  H.fork(Main, 0, 1);
  Threads.emplace_back(Committer, 1);
  H.fork(Main, 0, 2);
  Threads.emplace_back(Committer, 2);
  H.fork(Main, 0, 3);
  Threads.emplace_back(PlainWriter);
  H.fork(Main, 0, 4);
  Threads.emplace_back(Noise);
  for (unsigned I = 0; I != Threads.size(); ++I) {
    Threads[I].join();
    H.join(Main, 0, static_cast<ThreadId>(I + 1));
  }
  H.terminate(Main, 0);

  Trace Observed = mergeTrace(Recs);
  // Only f0 races (plain write vs transactional). f1..f3 are touched by
  // commits alone, and transactional pairs never race; the noise data is
  // lock-protected or private.
  std::set<VarId> Expected{VarId{TxnObj, 0}};
  EXPECT_EQ(oracleVerdicts(Observed), Expected);
  EXPECT_EQ(engineVerdicts(Recs), Expected);
  EXPECT_EQ(referenceVerdicts(Observed), Expected);

  GoldilocksEngine &E = H.Det.engine();
  EngineStats St = E.stats();
  EXPECT_GT(St.GcRuns, 0u) << "workload never exercised GC";
  EXPECT_EQ(E.health().DegradationLevel, 0u) << "no caps were set";
  checkEngineConsistency(E);
}

} // namespace
