//===- tests/ConcurrencyTest.cpp - True multi-threaded engine tests -------===//
///
/// Differential testing of the lock-free engine under real concurrency,
/// built on the shared ticketed harness (tests/DifferentialHarness.h):
/// N OS threads hammer one GoldilocksEngine through the detector interface
/// with idiom mixes in the style of RandomTrace (private data, lock-shared
/// data, volatile publication, deliberate no-sync races, transactions).
/// The observed linearization is replayed post-hoc through the HB oracle
/// and the eager reference algorithm — the three verdict sets (racy
/// variables) must agree on every seeded run.
///
/// Named regressions: an ownership-transfer interleaving (lock handoff must
/// not race, real-time-only handoff must race) and a commit-anchor
/// interleaving (GC runs between commitPoint and finishCommit while other
/// threads append — anchor clamping must keep transactional verdicts exact).
///
//===----------------------------------------------------------------------===//

#include "DifferentialHarness.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace gold;
using namespace gold::difftest;

namespace {

//===----------------------------------------------------------------------===//
// Seeded mixed-idiom fuzz runs (workload lives in the harness)
//===----------------------------------------------------------------------===//

TEST(ConcurrencyTest, MixedIdiomsMatchOracleAcrossSeeds) {
  for (unsigned Threads : {2u, 4u, 8u})
    for (uint64_t Seed : {1u, 2u, 3u})
      runMixedWorkload(Threads, Seed);
}

//===----------------------------------------------------------------------===//
// Named regression: ownership transfer
//===----------------------------------------------------------------------===//

// Thread 1 initializes a payload without holding any lock, then hands it to
// thread 2 through a lock-protected slot (the classic ownership-transfer
// idiom Goldilocks handles and pure lockset detectors like Eraser flag).
// A second payload is handed over with *real-time ordering only* (a raw
// atomic flag the detector never sees) — that one must race: real-time
// order without a synchronization action is not happens-before.
TEST(ConcurrencyTest, OwnershipTransferHandoff) {
  constexpr ObjectId XObj = 10;   // correctly transferred payload
  constexpr ObjectId YObj = 11;   // real-time-only "transfer" (races)
  constexpr ObjectId Lock = 12;
  constexpr ObjectId SlotObj = 13;

  Harness H((EngineConfig()));
  std::vector<Recorder> Recs(3);
  Recorder &Main = Recs[0];

  std::mutex M;
  bool SlotSet = false; // guarded by M
  std::atomic<bool> BrokenFlag{false};

  H.alloc(Main, 0, XObj, 1);
  H.alloc(Main, 0, YObj, 1);
  H.alloc(Main, 0, Lock, 1);
  H.alloc(Main, 0, SlotObj, 1);

  auto Producer = [&] {
    Recorder &R = Recs[1];
    H.write(R, 1, VarId{XObj, 0}); // init outside any lock
    {
      std::lock_guard<std::mutex> G(M);
      H.acq(R, 1, Lock);
      H.write(R, 1, VarId{SlotObj, 0}); // publish the handle
      SlotSet = true;
      H.rel(R, 1, Lock);
    }
    H.write(R, 1, VarId{YObj, 0});
    BrokenFlag.store(true, std::memory_order_release);
    H.terminate(R, 1);
  };

  auto Consumer = [&] {
    Recorder &R = Recs[2];
    bool Got = false;
    while (!Got) {
      {
        std::lock_guard<std::mutex> G(M);
        H.acq(R, 2, Lock);
        H.read(R, 2, VarId{SlotObj, 0});
        Got = SlotSet;
        H.rel(R, 2, Lock);
      }
      if (!Got)
        std::this_thread::yield();
    }
    // Ordered after the producer's init through the lock handoff chain.
    H.read(R, 2, VarId{XObj, 0});
    // Really-after but with no synchronization action in between: a race.
    while (!BrokenFlag.load(std::memory_order_acquire))
      std::this_thread::yield();
    H.read(R, 2, VarId{YObj, 0});
    H.terminate(R, 2);
  };

  H.fork(Main, 0, 1);
  std::thread T1(Producer);
  H.fork(Main, 0, 2);
  std::thread T2(Consumer);
  T1.join();
  H.join(Main, 0, 1);
  T2.join();
  H.join(Main, 0, 2);
  H.terminate(Main, 0);

  Trace Observed = mergeTrace(Recs);
  std::set<VarId> Expected{VarId{YObj, 0}};
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, oracleVarSet(Observed));
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, engineVerdicts(Recs));
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, referenceVarSet(Observed));
  checkEngineConsistency(H.Det.engine());
}

//===----------------------------------------------------------------------===//
// Named regression: commit anchors under concurrent GC
//===----------------------------------------------------------------------===//

// Two committers run two-phase commits (commitPoint under a real mutex so
// conflicting commits enter the synchronization order in serialization
// order, finishCommit outside it), while a plain writer races one of the
// committed variables and a noise thread appends enough synchronization to
// keep threshold-GC running. The collector's advance boundary must clamp at
// pending commit anchors: if it ever advanced an Info past one, the
// finish-phase checks would replay the commit's own rule-9 reset and
// silently bless the race on TXN.f0.
TEST(ConcurrencyTest, CommitAnchorsSurviveConcurrentGc) {
  constexpr ObjectId TxnObj = 20; // f0 raced by the plain writer
  constexpr ObjectId NoiseLock = 21;
  constexpr ObjectId NoisePriv = 22;
  constexpr ObjectId CommitterPriv = 23; // +committer id

  EngineConfig C;
  C.GcThreshold = 64; // force frequent collection during commit windows
  Harness H(C);
  std::vector<Recorder> Recs(5);
  Recorder &Main = Recs[0];

  std::mutex CM; // real serialization of commit points

  H.alloc(Main, 0, TxnObj, 4);
  H.alloc(Main, 0, NoiseLock, 1);
  H.alloc(Main, 0, NoisePriv, 4);
  H.alloc(Main, 0, CommitterPriv + 1, 2);
  H.alloc(Main, 0, CommitterPriv + 2, 2);

  auto Committer = [&](ThreadId Tid) {
    Recorder &R = Recs[Tid];
    Random Rng(40 + Tid);
    for (unsigned I = 0; I != 50; ++I) {
      CommitSets CS;
      CS.Reads.push_back(VarId{TxnObj, 1});
      if (Rng.chance(1, 2))
        CS.Reads.push_back(VarId{TxnObj, 2});
      CS.Writes.push_back(VarId{TxnObj, 0});
      if (Rng.chance(1, 2))
        CS.Writes.push_back(VarId{TxnObj, 3});
      {
        std::lock_guard<std::mutex> G(CM);
        H.commitPoint(R, Tid, CS);
      }
      // Window between point and finish: other threads append events and
      // trigger GC here; the pending anchor must pin the walk window.
      H.write(R, Tid, VarId{CommitterPriv + Tid, 0});
      H.read(R, Tid, VarId{CommitterPriv + Tid, 1});
      H.commitFinish(R, Tid, CS);
    }
    H.terminate(R, Tid);
  };

  auto PlainWriter = [&] {
    Recorder &R = Recs[3];
    for (unsigned I = 0; I != 150; ++I) {
      H.write(R, 3, VarId{TxnObj, 0}); // rule 2: plain write vs commit
      H.read(R, 3, VarId{NoisePriv, 3});
    }
    H.terminate(R, 3);
  };

  auto Noise = [&] {
    Recorder &R = Recs[4];
    std::mutex Local;
    for (unsigned I = 0; I != 300; ++I) {
      std::lock_guard<std::mutex> G(Local);
      H.acq(R, 4, NoiseLock);
      H.write(R, 4, VarId{NoisePriv, 0});
      H.rel(R, 4, NoiseLock);
    }
    H.terminate(R, 4);
  };

  std::vector<std::thread> Threads;
  H.fork(Main, 0, 1);
  Threads.emplace_back(Committer, 1);
  H.fork(Main, 0, 2);
  Threads.emplace_back(Committer, 2);
  H.fork(Main, 0, 3);
  Threads.emplace_back(PlainWriter);
  H.fork(Main, 0, 4);
  Threads.emplace_back(Noise);
  for (unsigned I = 0; I != Threads.size(); ++I) {
    Threads[I].join();
    H.join(Main, 0, static_cast<ThreadId>(I + 1));
  }
  H.terminate(Main, 0);

  Trace Observed = mergeTrace(Recs);
  // Only f0 races (plain write vs transactional). f1..f3 are touched by
  // commits alone, and transactional pairs never race; the noise data is
  // lock-protected or private.
  std::set<VarId> Expected{VarId{TxnObj, 0}};
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, oracleVarSet(Observed));
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, engineVerdicts(Recs));
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, referenceVarSet(Observed));

  GoldilocksEngine &E = H.Det.engine();
  EngineStats St = E.stats();
  EXPECT_GT(St.GcRuns, 0u) << "workload never exercised GC";
  EXPECT_EQ(E.health().DegradationLevel, 0u) << "no caps were set";
  checkEngineConsistency(E);
}

} // namespace
