//===- tests/HbOracleTest.cpp - extended happens-before oracle tests ------===//

#include "event/PaperTraces.h"
#include "hb/HbOracle.h"

#include <gtest/gtest.h>

using namespace gold;

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 1);
  B.set(1, 5);
  A.join(B);
  EXPECT_EQ(A.get(0), 3u);
  EXPECT_EQ(A.get(1), 5u);
  EXPECT_EQ(A.get(7), 0u);
}

TEST(VectorClockTest, LeqIsPartialOrder) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 2);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
  B.set(1, 0);
  A.set(1, 3);
  EXPECT_FALSE(A.leq(B)); // incomparable now
  EXPECT_FALSE(B.leq(A) && A.leq(B));
}

TEST(HbAnalysisTest, ProgramOrderIsHb) {
  TraceBuilder B;
  B.write(0, 1, 0).read(0, 1, 0);
  Trace T = B.take();
  HbAnalysis Hb(T);
  EXPECT_TRUE(Hb.happensBefore(0, 1));
  EXPECT_FALSE(Hb.happensBefore(1, 0));
}

TEST(HbAnalysisTest, LockHandoffCreatesEdge) {
  TraceBuilder B;
  B.acq(0, 5).write(0, 1, 0).rel(0, 5); // 0,1,2
  B.acq(1, 5).write(1, 1, 0).rel(1, 5); // 3,4,5
  Trace T = B.take();
  HbAnalysis Hb(T);
  EXPECT_TRUE(Hb.happensBefore(1, 4)); // write hb write through the lock
  EXPECT_TRUE(Hb.happensBefore(2, 3)); // rel hb acq
}

TEST(HbAnalysisTest, UnrelatedThreadsAreConcurrent) {
  TraceBuilder B;
  B.write(0, 1, 0).write(1, 1, 0);
  Trace T = B.take();
  HbAnalysis Hb(T);
  EXPECT_TRUE(Hb.concurrent(0, 1));
}

TEST(HbAnalysisTest, VolatileWriteReadEdge) {
  TraceBuilder B;
  B.write(0, 1, 0).volWrite(0, 1, 9); // 0,1
  B.volRead(1, 1, 9).read(1, 1, 0);   // 2,3
  Trace T = B.take();
  HbAnalysis Hb(T);
  EXPECT_TRUE(Hb.happensBefore(0, 3));
}

TEST(HbAnalysisTest, ForkJoinEdges) {
  Trace T = idiomForkJoinTrace();
  HbAnalysis Hb(T);
  // alloc(0) write(1) fork(2) childwrite(3) term(4) join(5) read(6)
  EXPECT_TRUE(Hb.happensBefore(1, 3)); // parent write hb child write
  EXPECT_TRUE(Hb.happensBefore(3, 6)); // child write hb post-join read
}

TEST(HbAnalysisTest, CommitsSharingVarsAreOrdered) {
  Trace T = paperExample3Trace();
  HbAnalysis Hb(T);
  // Commits are at indices 2, 3, 4; each consecutive pair shares head.
  EXPECT_TRUE(Hb.happensBefore(2, 3));
  EXPECT_TRUE(Hb.happensBefore(3, 4));
  EXPECT_TRUE(Hb.happensBefore(2, 4));
  // T1's plain init (index 1) is ordered before T3's access (index 5)
  // through the chain of transactions.
  EXPECT_TRUE(Hb.happensBefore(1, 5));
}

TEST(HbAnalysisTest, CommitsWithDisjointVarsStayConcurrent) {
  TraceBuilder B;
  B.commit(0, {VarId{1, 0}}, {});
  B.commit(1, {VarId{2, 0}}, {});
  Trace T = B.take();
  HbAnalysis Hb(T);
  EXPECT_TRUE(Hb.concurrent(0, 1));
}

TEST(RaceOracleTest, Example2IsRaceFree) {
  RaceOracle O(paperExample2Trace());
  EXPECT_TRUE(O.races().empty());
}

TEST(RaceOracleTest, Example3IsRaceFree) {
  RaceOracle O(paperExample3Trace());
  EXPECT_TRUE(O.races().empty());
}

TEST(RaceOracleTest, Example4RacesOnCheckingBalOnly) {
  for (bool TxnFirst : {false, true}) {
    RaceOracle O(paperExample4Trace(TxnFirst));
    ASSERT_EQ(O.races().size(), 1u) << "TxnFirst=" << TxnFirst;
    EXPECT_EQ(O.races()[0].Var, (VarId{1, 0})); // checking.bal
    EXPECT_FALSE(O.isRacy(VarId{0, 0}));        // savings.bal is safe
  }
}

TEST(RaceOracleTest, UnsyncWritesRace) {
  RaceOracle O(idiomUnsyncRacyTrace());
  ASSERT_EQ(O.races().size(), 1u);
  EXPECT_EQ(O.races()[0].Var, (VarId{paper::O, 0}));
}

TEST(RaceOracleTest, SafeIdiomsHaveNoRaces) {
  EXPECT_TRUE(RaceOracle(idiomVolatileFlagTrace()).races().empty());
  EXPECT_TRUE(RaceOracle(idiomForkJoinTrace()).races().empty());
  EXPECT_TRUE(RaceOracle(idiomBarrierTrace()).races().empty());
  EXPECT_TRUE(RaceOracle(idiomIndirectHandoffTrace()).races().empty());
}

TEST(RaceOracleTest, ReadReadIsNeverARace) {
  TraceBuilder B;
  B.read(0, 1, 0).read(1, 1, 0).read(2, 1, 0);
  RaceOracle O(B.take());
  EXPECT_TRUE(O.races().empty());
}

TEST(RaceOracleTest, WriteThenConcurrentReadRaces) {
  TraceBuilder B;
  B.write(0, 1, 0).read(1, 1, 0);
  RaceOracle O(B.take());
  ASSERT_EQ(O.races().size(), 1u);
  EXPECT_EQ(O.races()[0].AccessIndex, 1u);
}

TEST(RaceOracleTest, AllocResetsHistory) {
  TraceBuilder B;
  B.write(0, 1, 0);
  B.alloc(1, 1, 1); // address reuse: object 1 is fresh again
  B.write(1, 1, 0);
  RaceOracle O(B.take());
  EXPECT_TRUE(O.races().empty());
}

TEST(RaceOracleTest, OneRacePerVariable) {
  TraceBuilder B;
  B.write(0, 1, 0).write(1, 1, 0).write(2, 1, 0);
  RaceOracle O(B.take());
  EXPECT_EQ(O.races().size(), 1u); // disabled after the first report
}

TEST(RaceOracleTest, TxnVsPlainWriteRaces) {
  TraceBuilder B;
  B.write(0, 1, 0);
  B.commit(1, {VarId{1, 0}}, {});
  RaceOracle O(B.take());
  ASSERT_EQ(O.races().size(), 1u);
}

TEST(RaceOracleTest, PlainReadVsTxnReadIsSafe) {
  // A read inside a transaction does not conflict with a plain read.
  TraceBuilder B;
  B.read(0, 1, 0);
  B.commit(1, {VarId{1, 0}}, {});
  RaceOracle O(B.take());
  EXPECT_TRUE(O.races().empty());
}
