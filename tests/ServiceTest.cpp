//===- tests/ServiceTest.cpp - always-on ingestion service tests ----------===//
///
/// Covers the sharded detection service end to end: the bounded MPSC ring
/// and its backoff schedule, per-session isolation (error budget, idle
/// reaping, namespace validation), the backpressure contract (bounded
/// queues, retry-the-same-line exactness), the overload ladder (admission
/// pause, priority shedding), crash-only shard reincarnation with journal
/// replay (zero lost, zero duplicated verdicts — or counted loss when
/// replay is off), namespace recycling, and multi-client differential
/// soaks — threaded and chaos-injected — against the happens-before oracle.
///
//===----------------------------------------------------------------------===//

#include "DifferentialHarness.h"

#include "event/TraceIO.h"
#include "service/IngestRing.h"
#include "service/Service.h"
#include "support/Failpoints.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace gold;

namespace {

std::vector<std::string> traceLines(const Trace &T) {
  std::vector<std::string> Lines;
  std::istringstream In(serializeTrace(T));
  std::string L;
  while (std::getline(In, L))
    if (!L.empty())
      Lines.push_back(L);
  return Lines;
}

Trace smallRandomTrace(uint64_t Seed, unsigned Steps = 40,
                       unsigned Threads = 4) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.StepsPerThread = Steps;
  P.NumThreads = Threads;
  return generateRandomTrace(P);
}

// Key-set projections shared with every other differential suite.
std::set<uint64_t> varKeys(const std::vector<RaceReport> &Reports) {
  return difftest::racyKeySet(Reports);
}

std::set<uint64_t> oracleKeys(const Trace &T, TxnSyncSemantics Sem) {
  return difftest::oracleKeySet(T, Sem);
}

/// Inline-mode feed honoring the backpressure contract: on Backpressure the
/// caller IS the consumer, so pump (and poll, which un-wedges shards) and
/// present the very same line again.
FeedResult feedInline(DetectionService &Svc, Session &S,
                      const std::string &Line) {
  for (;;) {
    FeedResult R = S.feedLine(Line);
    if (R.St != FeedResult::Status::Backpressure)
      return R;
    Svc.pumpAll();
    Svc.poll();
  }
}

void feedAllInline(DetectionService &Svc, Session &S,
                   const std::vector<std::string> &Lines) {
  for (const std::string &L : Lines) {
    FeedResult R = feedInline(Svc, S, L);
    ASSERT_EQ(R.St, FeedResult::Status::Accepted) << R.Error;
  }
}

/// Threaded-mode feed: sleep the jittered retry-after the service returned.
FeedResult feedThreaded(Session &S, const std::string &Line) {
  for (;;) {
    FeedResult R = S.feedLine(Line);
    if (R.St != FeedResult::Status::Backpressure)
      return R;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(R.RetryAfterNanos ? R.RetryAfterNanos : 500));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// IngestRing
//===----------------------------------------------------------------------===//

TEST(IngestRingTest, FifoAndFullRejection) {
  IngestRing<int> R(6); // rounds up to 8
  EXPECT_EQ(R.capacity(), 8u);
  for (int I = 0; I != 8; ++I)
    EXPECT_EQ(R.tryPush(I), PushResult::Ok);
  EXPECT_EQ(R.tryPush(99), PushResult::Full);
  EXPECT_EQ(R.depth(), 8u);
  int V = -1;
  for (int I = 0; I != 8; ++I) {
    ASSERT_TRUE(R.tryPop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(R.tryPop(V));
  EXPECT_EQ(R.depth(), 0u);
  // Freed slots are reusable (the ring wraps).
  EXPECT_EQ(R.tryPush(42), PushResult::Ok);
  ASSERT_TRUE(R.tryPop(V));
  EXPECT_EQ(V, 42);
}

TEST(IngestRingTest, CloseRejectsAndDiscardCounts) {
  IngestRing<int> R(4);
  EXPECT_EQ(R.tryPush(1), PushResult::Ok);
  EXPECT_EQ(R.tryPush(2), PushResult::Ok);
  R.close();
  EXPECT_TRUE(R.closed());
  EXPECT_EQ(R.tryPush(3), PushResult::Closed);
  // Queued items remain poppable after close; discardAll drains them.
  EXPECT_EQ(R.discardAll(), 2u);
  EXPECT_EQ(R.depth(), 0u);
  R.reopen();
  EXPECT_EQ(R.tryPush(4), PushResult::Ok);
}

TEST(IngestRingTest, MpscStressDeliversEveryItemExactlyOnce) {
  constexpr unsigned Producers = 4;
  constexpr uint64_t PerProducer = 20000;
  IngestRing<uint64_t> R(256);
  std::atomic<bool> Done{false};
  std::vector<uint64_t> NextSeq(Producers, 0);
  uint64_t Popped = 0;
  std::thread Consumer([&] {
    uint64_t V;
    while (Popped != Producers * PerProducer) {
      if (!R.tryPop(V)) {
        if (Done.load(std::memory_order_acquire) && !R.tryPop(V))
          continue; // producers done; drain whatever is left
        std::this_thread::yield();
        continue;
      }
      uint64_t P = V >> 32, Seq = V & 0xffffffffu;
      ASSERT_LT(P, Producers);
      // Per-producer FIFO: sequences arrive in order, none skipped.
      ASSERT_EQ(Seq, NextSeq[P]);
      ++NextSeq[P];
      ++Popped;
    }
  });
  std::vector<std::thread> Threads;
  for (unsigned P = 0; P != Producers; ++P)
    Threads.emplace_back([&R, P] {
      for (uint64_t I = 0; I != PerProducer; ++I) {
        uint64_t V = (static_cast<uint64_t>(P) << 32) | I;
        while (R.tryPush(V) != PushResult::Ok)
          std::this_thread::yield();
      }
    });
  for (std::thread &T : Threads)
    T.join();
  Done.store(true, std::memory_order_release);
  Consumer.join();
  EXPECT_EQ(Popped, Producers * PerProducer);
  EXPECT_EQ(R.depth(), 0u);
}

TEST(IngestRingTest, CloseSettlesInFlightPushes) {
  // close() must fence out in-flight tryPush calls: once it returns, every
  // concurrent push has either published (and the discard below sees it) or
  // observed Closed. A push publishing *behind* the discard would survive a
  // reincarnation's engine swap and get applied on top of the journal
  // replay — the double-application this test guards against.
  for (int Round = 0; Round != 50; ++Round) {
    IngestRing<int> R(64);
    std::atomic<uint64_t> Pushed{0};
    std::atomic<bool> Go{false};
    std::vector<std::thread> Producers;
    for (int P = 0; P != 4; ++P)
      Producers.emplace_back([&] {
        while (!Go.load(std::memory_order_acquire))
          std::this_thread::yield();
        for (;;) {
          PushResult Res = R.tryPush(1);
          if (Res == PushResult::Closed)
            break;
          if (Res == PushResult::Ok)
            Pushed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    Go.store(true, std::memory_order_release);
    R.close();
    size_t Discarded = R.discardAll();
    for (std::thread &T : Producers)
      T.join();
    // Nothing trickled in after the discard, and the discard saw every
    // successful push.
    int V;
    EXPECT_FALSE(R.tryPop(V));
    EXPECT_EQ(R.depth(), 0u);
    EXPECT_EQ(Discarded, Pushed.load(std::memory_order_relaxed));
  }
}

TEST(IngestRingTest, BackoffScheduleIsDeterministicBoundedJitter) {
  const uint64_t Base = 1000, Max = 1u << 20;
  for (unsigned A = 0; A != 8; ++A) {
    uint64_t W = backoffNanos(Base, A, /*Seed=*/7, Max);
    EXPECT_EQ(W, backoffNanos(Base, A, 7, Max)) << "must be deterministic";
    uint64_t Ideal = Base << A;
    if (Ideal > Max)
      Ideal = Max;
    EXPECT_GE(W, Ideal - Ideal / 4) << "attempt " << A;
    EXPECT_LE(W, Ideal + Ideal / 4) << "attempt " << A;
  }
  // Deep attempts saturate at the cap (within jitter), never overflow to 0.
  uint64_t Deep = backoffNanos(Base, 63, 9, Max);
  EXPECT_GE(Deep, Max - Max / 4);
  EXPECT_LE(Deep, Max + Max / 4);
  EXPECT_GT(backoffNanos(Base, 0, 1, Max), 0u);
}

//===----------------------------------------------------------------------===//
// Sessions: isolation, budgets, teardown
//===----------------------------------------------------------------------===//

TEST(ServiceTest, SingleClientMatchesOracleAndSingleEngine) {
  for (uint64_t Seed : {3u, 17u, 99u}) {
    Trace T = smallRandomTrace(Seed);
    ServiceConfig SC;
    SC.Shards = 4;
    DetectionService Svc(SC);
    auto R = Svc.open(/*ClientId=*/1);
    ASSERT_NE(R.S, nullptr) << R.Error;
    feedAllInline(Svc, *R.S, traceLines(T));
    R.S->close();
    Svc.drain();
    Svc.poll();
    std::set<uint64_t> Got = varKeys(R.S->takeVerdicts());
    EXPECT_EQ(Got, oracleKeys(T, SC.Engine.Semantics)) << "seed " << Seed;
    // Cross-check against one unsharded engine over the same trace.
    EngineConfig EC;
    EC.DisableVarAfterRace = true;
    GoldilocksDetector D(EC);
    EXPECT_EQ(Got, varKeys(D.runTrace(T))) << "seed " << Seed;
    EXPECT_EQ(R.S->state(), SessionState::Dead);
    EXPECT_EQ(R.S->closeReason(), CloseReason::ClientClose);
  }
}

TEST(ServiceTest, VerdictsAreUnmappedIntoClientIdSpace) {
  DetectionService Svc;
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  feedAllInline(Svc, *R.S,
                {"fork 0 1", "write 0 5 0", "write 1 5 0"});
  Svc.drain();
  std::vector<RaceReport> V = R.S->takeVerdicts();
  ASSERT_EQ(V.size(), 1u);
  // The service namespaces ids internally; reports come back in the
  // client's own id space.
  EXPECT_EQ(V[0].Var.Object, 5u);
  EXPECT_LT(V[0].Thread, 2u);
  EXPECT_LT(V[0].PriorThread, 2u);
  EXPECT_EQ(R.S->racesDelivered(), 1u);
}

TEST(ServiceTest, ClientsAreIsolatedNoCrossSessionEdges) {
  // Two clients use the *same* raw ids. Client A publishes o1 under a lock;
  // client B races on its own o1. A's verdicts must be empty, B's must see
  // exactly its race — no lock edge or variable state may leak across.
  DetectionService Svc;
  auto A = Svc.open(1), B = Svc.open(2);
  ASSERT_NE(A.S, nullptr);
  ASSERT_NE(B.S, nullptr);
  feedAllInline(Svc, *A.S,
                {"fork 0 1", "acq 0 9", "write 0 1 0", "rel 0 9", "acq 1 9",
                 "read 1 1 0", "rel 1 9"});
  feedAllInline(Svc, *B.S, {"fork 0 1", "write 0 1 0", "read 1 1 0"});
  Svc.drain();
  EXPECT_TRUE(A.S->takeVerdicts().empty());
  std::vector<RaceReport> BV = B.S->takeVerdicts();
  ASSERT_EQ(BV.size(), 1u);
  EXPECT_EQ(BV[0].Var.Object, 1u);
}

TEST(ServiceTest, ErrorBudgetExhaustionClosesSessionCrashOnly) {
  ServiceConfig SC;
  SC.SessionErrorBudget = 2;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  for (int I = 0; I != 2; ++I) {
    FeedResult F = R.S->feedLine("frobnicate 1 2 3");
    EXPECT_EQ(F.St, FeedResult::Status::Rejected);
    EXPECT_EQ(R.S->state(), SessionState::Open);
  }
  FeedResult F = R.S->feedLine("still garbage");
  EXPECT_EQ(F.St, FeedResult::Status::Rejected);
  EXPECT_NE(F.Error.find("error budget exhausted"), std::string::npos);
  EXPECT_EQ(R.S->state(), SessionState::Dead);
  EXPECT_EQ(R.S->closeReason(), CloseReason::ErrorBudget);
  // The session answers Closed from now on instead of crashing or leaking.
  EXPECT_EQ(R.S->feedLine("write 0 1 0").St, FeedResult::Status::Closed);
  EXPECT_EQ(Svc.health().ParseErrors, 3u);
}

TEST(ServiceTest, NamespaceOverflowTearsTheSessionDown) {
  DetectionService Svc;
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  std::string Big = std::to_string(NamespaceStride); // first out-of-range id
  FeedResult F = R.S->feedLine("write 0 " + Big + " 0");
  EXPECT_EQ(F.St, FeedResult::Status::Rejected);
  EXPECT_NE(F.Error.find("namespace"), std::string::npos);
  EXPECT_EQ(R.S->state(), SessionState::Dead);
}

TEST(ServiceTest, IdleTimeoutReapsWithManualClock) {
  auto Clock = std::make_shared<std::atomic<uint64_t>>(1);
  ServiceConfig SC;
  SC.IdleTimeoutNanos = 1000;
  SC.NowNanos = [Clock] { return Clock->load(std::memory_order_relaxed); };
  DetectionService Svc(SC);
  auto A = Svc.open(1), B = Svc.open(2);
  ASSERT_NE(A.S, nullptr);
  ASSERT_NE(B.S, nullptr);
  EXPECT_EQ(A.S->feedLine("write 0 1 0").St, FeedResult::Status::Accepted);
  Clock->store(900);
  Svc.poll();
  EXPECT_EQ(A.S->state(), SessionState::Open) << "within the deadline";
  Clock->store(5000);
  EXPECT_EQ(B.S->feedLine("write 0 1 0").St, FeedResult::Status::Accepted);
  Svc.poll();
  EXPECT_EQ(A.S->state(), SessionState::Dead);
  EXPECT_EQ(A.S->closeReason(), CloseReason::IdleTimeout);
  EXPECT_EQ(B.S->state(), SessionState::Open) << "B fed recently";
}

//===----------------------------------------------------------------------===//
// Backpressure: bounded, explicit, exact
//===----------------------------------------------------------------------===//

TEST(ServiceTest, BackpressureBoundsQueuedBytesAndStaysExact) {
  Trace T = smallRandomTrace(5);
  ServiceConfig SC;
  SC.Shards = 2;
  SC.RingCapacity = 8;
  SC.MaxQueuedBytes = 256; // tiny: force rejections constantly
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);

  bool SawBackpressure = false;
  for (const std::string &L : traceLines(T)) {
    for (;;) {
      FeedResult F = R.S->feedLine(L);
      if (F.St == FeedResult::Status::Accepted)
        break;
      ASSERT_EQ(F.St, FeedResult::Status::Backpressure) << F.Error;
      SawBackpressure = true;
      EXPECT_GT(F.RetryAfterNanos, 0u);
      // The hard bound: queued bytes never exceed the budget (one item of
      // check-then-add overshoot at most; items here are tiny lines).
      EXPECT_LE(Svc.health().QueuedBytes,
                SC.MaxQueuedBytes + TraceParser::MaxLineBytes);
      Svc.pumpAll(); // we are the consumer; make room and retry same line
    }
  }
  EXPECT_TRUE(SawBackpressure) << "budget was too generous to test anything";
  R.S->close();
  Svc.drain();
  Svc.poll();
  ServiceHealth H = Svc.health();
  EXPECT_GT(H.BackpressureRejects, 0u);
  EXPECT_EQ(H.QueuedBytes, 0u);
  EXPECT_LE(H.QueuedBytesHighWater, SC.MaxQueuedBytes);
  // Retrying the same line after Backpressure neither lost nor duplicated
  // anything: the verdicts still match the oracle exactly.
  EXPECT_EQ(varKeys(R.S->takeVerdicts()),
            oracleKeys(T, SC.Engine.Semantics));
  EXPECT_EQ(H.VerdictLossEvents, 0u);
}

TEST(ServiceTest, LadderPausesAdmissionThenShedsLowestPriority) {
  ServiceConfig SC;
  SC.Shards = 1;
  SC.RingCapacity = 256;
  SC.MaxQueuedBytes = 400;
  DetectionService Svc(SC);
  auto Hi = Svc.open(1, /*Priority=*/5);
  auto Lo = Svc.open(2, /*Priority=*/1);
  ASSERT_NE(Hi.S, nullptr);
  ASSERT_NE(Lo.S, nullptr);

  // Fill past the shed fraction without consuming.
  size_t Queued = 0;
  unsigned Obj = 0;
  while (Queued <= SC.MaxQueuedBytes * 96 / 100) {
    std::string L = "write 0 " + std::to_string(Obj++ % 64) + " 0";
    FeedResult F = Hi.S->feedLine(L);
    if (F.St != FeedResult::Status::Accepted)
      break; // budget reached
    Queued = Svc.health().QueuedBytes;
  }
  Svc.poll();
  ServiceHealth H = Svc.health();
  EXPECT_EQ(H.LadderState, 2u) << "queued=" << H.QueuedBytes;
  // Rung 2 shed the lowest-priority session, not the loud high-priority one.
  EXPECT_EQ(Lo.S->state(), SessionState::Dead);
  EXPECT_EQ(Lo.S->closeReason(), CloseReason::Shed);
  EXPECT_EQ(Hi.S->state(), SessionState::Open);
  EXPECT_EQ(H.SessionsShed, 1u);
  // Rung 1: no new clients while overloaded — refused with a retry hint.
  auto Refused = Svc.open(3);
  EXPECT_EQ(Refused.S, nullptr);
  EXPECT_GT(Refused.RetryAfterNanos, 0u);
  EXPECT_GT(Svc.health().AdmissionRejects, 0u);
  // Draining restores normal operation and admission.
  Svc.drain();
  Svc.poll();
  EXPECT_EQ(Svc.health().LadderState, 0u);
  EXPECT_NE(Svc.open(4).S, nullptr);
}

//===----------------------------------------------------------------------===//
// Crash-only recovery
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ReincarnationReplaysJournalsZeroLossZeroDup) {
  Trace T = smallRandomTrace(21);
  std::vector<std::string> Lines = traceLines(T);
  ServiceConfig SC;
  SC.Shards = 2;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);

  size_t Half = Lines.size() / 2;
  for (size_t I = 0; I != Half; ++I)
    ASSERT_EQ(feedInline(Svc, *R.S, Lines[I]).St,
              FeedResult::Status::Accepted);
  Svc.drain(); // some verdicts may already have been delivered

  // Crash-only swap of every shard mid-stream: engines restart fresh and
  // rebuild from the session journal.
  Svc.reincarnateShard(0);
  Svc.reincarnateShard(1);

  for (size_t I = Half; I != Lines.size(); ++I)
    ASSERT_EQ(feedInline(Svc, *R.S, Lines[I]).St,
              FeedResult::Status::Accepted);
  R.S->close();
  Svc.drain();
  Svc.poll();

  ServiceHealth H = Svc.health();
  EXPECT_EQ(H.Reincarnations, 2u);
  EXPECT_GT(H.ReplayedActions, 0u);
  EXPECT_EQ(H.VerdictLossEvents, 0u);
  // Zero lost (replay reconstructed everything) and zero duplicated (the
  // per-variable dedup swallowed the replay's regenerated verdicts).
  std::vector<RaceReport> V = R.S->takeVerdicts();
  EXPECT_EQ(varKeys(V), oracleKeys(T, SC.Engine.Semantics));
  std::set<uint64_t> Seen;
  for (const RaceReport &Rep : V)
    EXPECT_TRUE(Seen.insert(Rep.Var.key()).second)
        << "duplicate verdict for one variable";
}

TEST(ServiceTest, ReincarnationMidBackpressureDoesNotReparseTheRetry) {
  // A line that bounced with Backpressure sits parsed in the journal with a
  // pending shard bitmask. If a reincarnation replays the journal (pending
  // included) and acks the pending's last shard, the producer's mandatory
  // retry of that same line must be an ack-only no-op: re-parsing it would
  // journal and route the action twice (and a retried fork line would be
  // rejected as "already forked", poisoning an innocent client).
  ServiceConfig SC;
  SC.Shards = 1;
  SC.RingCapacity = 4;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);

  ASSERT_EQ(R.S->feedLine("fork 0 1").St, FeedResult::Status::Accepted);
  // Fill the 4-slot ring without pumping, then bounce a fork line off it.
  for (int I = 0; I != 3; ++I)
    ASSERT_EQ(R.S->feedLine("write 1 5 0").St, FeedResult::Status::Accepted);
  FeedResult BP = R.S->feedLine("fork 0 2");
  ASSERT_EQ(BP.St, FeedResult::Status::Backpressure);

  // Crash-only swap discards the queue, replays the journal — which already
  // holds the parsed "fork 0 2" — and acks the pending's only shard.
  Svc.reincarnateShard(0);

  // The contractual retry of the bounced line: must ack, not re-parse.
  FeedResult Retry = R.S->feedLine("fork 0 2");
  EXPECT_EQ(Retry.St, FeedResult::Status::Accepted) << Retry.Error;
  ASSERT_EQ(feedInline(Svc, *R.S, "write 2 5 0").St,
            FeedResult::Status::Accepted);
  ASSERT_EQ(feedInline(Svc, *R.S, "write 0 5 0").St,
            FeedResult::Status::Accepted);
  R.S->close();
  Svc.drain();
  Svc.poll();

  ServiceHealth H = Svc.health();
  EXPECT_EQ(H.ParseErrors, 0u);
  EXPECT_EQ(H.VerdictLossEvents, 0u);
  // The journal holds each action exactly once, so the verdicts match the
  // oracle of the logical client trace.
  Trace T;
  std::string Err;
  ASSERT_TRUE(parseTrace("fork 0 1\nwrite 1 5 0\nwrite 1 5 0\n"
                         "write 1 5 0\nfork 0 2\nwrite 2 5 0\nwrite 0 5 0\n",
                         T, Err))
      << Err;
  EXPECT_EQ(varKeys(R.S->takeVerdicts()), oracleKeys(T, SC.Engine.Semantics));
}

TEST(ServiceTest, WedgeFailpointRecoversThroughReincarnation) {
  FailpointConfig FC;
  FC.Seed = 1234;
  FC.rate(Failpoint::ServiceShardWedge, 200000); // 20% of pumped items
  FailpointScope Chaos(FC);

  Trace T = smallRandomTrace(33);
  ServiceConfig SC;
  SC.Shards = 2;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  feedAllInline(Svc, *R.S, traceLines(T));
  R.S->close();
  // Wedges stop a shard cold; only poll() clears them (by reincarnating),
  // so interleave pumping and polling until everything is applied.
  for (int I = 0; I != 10000 && Svc.health().QueuedItems; ++I) {
    Svc.pumpAll();
    Svc.poll();
  }
  Svc.poll();

  ServiceHealth H = Svc.health();
  EXPECT_GT(H.Reincarnations, 0u) << "chaos never fired";
  EXPECT_GT(H.ItemsDiscarded, 0u) << "every wedge drops the in-flight item";
  EXPECT_EQ(H.VerdictLossEvents, 0u) << "replay must recover every drop";
  EXPECT_EQ(varKeys(R.S->takeVerdicts()),
            oracleKeys(T, SC.Engine.Semantics));
}

TEST(ServiceTest, TruncatedJournalKillsSessionWithCountedLoss) {
  ServiceConfig SC;
  SC.Shards = 1;
  SC.JournalCapActions = 4;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  for (int I = 0; I != 10; ++I)
    ASSERT_EQ(
        feedInline(Svc, *R.S, "write 0 " + std::to_string(I) + " 0").St,
        FeedResult::Status::Accepted);
  Svc.drain();
  EXPECT_TRUE(R.S->journalTruncated());
  EXPECT_EQ(R.S->state(), SessionState::Open) << "streaming continues";

  // Now the shard dies. The journal cannot replay, so the session is killed
  // — and the loss is *counted*, never silent.
  Svc.reincarnateShard(0);
  EXPECT_EQ(R.S->state(), SessionState::Dead);
  EXPECT_EQ(R.S->closeReason(), CloseReason::ShardLost);
  ServiceHealth H = Svc.health();
  EXPECT_EQ(H.LostSessions, 1u);
  EXPECT_GE(H.VerdictLossEvents, 1u);
}

TEST(ServiceTest, ReplayDisabledCountsDiscardsAsLoss) {
  ServiceConfig SC;
  SC.Shards = 1;
  SC.ReplayOnReincarnation = false;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  for (int I = 0; I != 8; ++I)
    ASSERT_EQ(R.S->feedLine("write 0 " + std::to_string(I) + " 0").St,
              FeedResult::Status::Accepted);
  // Items are still queued; the reincarnation throws them away, and with
  // replay off that is real (but accounted) verdict loss.
  Svc.reincarnateShard(0);
  ServiceHealth H = Svc.health();
  EXPECT_GT(H.ItemsDiscarded, 0u);
  EXPECT_GE(H.VerdictLossEvents, H.ItemsDiscarded);
  EXPECT_EQ(H.ReplayedActions, 0u);
  EXPECT_EQ(R.S->state(), SessionState::Open) << "the session survives";
}

TEST(ServiceTest, ReplayDisabledCountsDroppedPendingAsLoss) {
  // A backpressured line leaves a parsed action pending against the full
  // shard. With replay off, a reincarnation clears that shard's pending bit
  // without ever applying the action — a real drop that must be counted in
  // VerdictLossEvents alongside the ring discards, never silent.
  ServiceConfig SC;
  SC.Shards = 1;
  SC.RingCapacity = 4;
  SC.ReplayOnReincarnation = false;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  for (int I = 0; I != 4; ++I)
    ASSERT_EQ(R.S->feedLine("write 0 " + std::to_string(I) + " 0").St,
              FeedResult::Status::Accepted);
  FeedResult BP = R.S->feedLine("write 0 9 0");
  ASSERT_EQ(BP.St, FeedResult::Status::Backpressure);

  Svc.reincarnateShard(0);
  ServiceHealth H = Svc.health();
  EXPECT_EQ(H.ItemsDiscarded, 4u);
  EXPECT_GE(H.VerdictLossEvents, H.ItemsDiscarded + 1)
      << "the dropped pending action must be accounted too";
  // The producer's mandatory retry of the bounced line is an ack-only
  // no-op: the action is gone (and counted), not re-parsed into the shard.
  EXPECT_EQ(R.S->feedLine("write 0 9 0").St, FeedResult::Status::Accepted);
  EXPECT_EQ(Svc.health().VerdictLossEvents, H.VerdictLossEvents);
}

TEST(ServiceTest, RecycledSlotPublicationIsRaceFree) {
  // Reuses namespace slots while the service's own threads (consumers and
  // watchdog) read sessions lock-free via sessionAt. Under tsan this pins
  // the atomic per-slot publication: a plain unique_ptr reset of a recycled
  // slot would be a data race with those readers.
  ServiceConfig SC;
  SC.Shards = 2;
  SC.MaxSessions = 2;
  SC.ShardSupervisor.SamplePeriodMillis = 1;
  DetectionService Svc(SC);
  Svc.start();
  for (int I = 0; I != 100; ++I) {
    auto R = Svc.open(I + 1);
    ASSERT_NE(R.S, nullptr) << R.Error;
    ASSERT_EQ(feedThreaded(*R.S, "write 0 1 0").St,
              FeedResult::Status::Accepted);
    R.S->close();
    // The consumers drain the item; the watchdog's poll finalizes Draining.
    while (R.S->state() != SessionState::Dead)
      std::this_thread::yield();
    Svc.recycleNamespaces();
  }
  Svc.shutdown();
  // Every generation's handle stays valid and Dead after recycling.
  EXPECT_EQ(Svc.health().ActiveSessions, 0u);
}

TEST(ServiceTest, NamespaceRecyclingReclaimsDeadSlots) {
  ServiceConfig SC;
  SC.MaxSessions = 2;
  DetectionService Svc(SC);
  auto A = Svc.open(1), B = Svc.open(2);
  ASSERT_NE(A.S, nullptr);
  ASSERT_NE(B.S, nullptr);
  auto Refused = Svc.open(3);
  EXPECT_EQ(Refused.S, nullptr) << "namespace must be exhausted at 2";

  A.S->close();
  B.S->close();
  Svc.drain();
  Svc.poll(); // finalizes the drained sessions to Dead
  EXPECT_EQ(Svc.recycleNamespaces(), 2u);
  auto C1 = Svc.open(4);
  ASSERT_NE(C1.S, nullptr) << C1.Error;
  EXPECT_EQ(feedInline(Svc, *C1.S, "write 0 1 0").St,
            FeedResult::Status::Accepted);
  // Stale handles to recycled sessions stay valid and answer Dead.
  EXPECT_EQ(A.S->state(), SessionState::Dead);
  EXPECT_EQ(A.S->feedLine("write 0 1 0").St, FeedResult::Status::Closed);
}

//===----------------------------------------------------------------------===//
// Multi-client differential soaks
//===----------------------------------------------------------------------===//

namespace {

/// Runs K concurrent client threads against a started service, each
/// streaming its own seeded random trace, then checks every surviving
/// client against the happens-before oracle for its own trace.
void threadedSoak(ServiceConfig SC, uint64_t BaseSeed, size_t K) {
  DetectionService Svc(SC);
  Svc.start();
  struct Client {
    Trace T;
    Session *S = nullptr;
    bool Completed = false;
  };
  std::vector<Client> Clients(K);
  for (size_t I = 0; I != K; ++I) {
    Clients[I].T = smallRandomTrace(BaseSeed + I, /*Steps=*/30);
    auto R = Svc.open(I + 1);
    ASSERT_NE(R.S, nullptr) << R.Error;
    Clients[I].S = R.S;
  }
  std::vector<std::thread> Producers;
  for (size_t I = 0; I != K; ++I)
    Producers.emplace_back([&Svc, &C = Clients[I]] {
      (void)Svc;
      bool Ok = true;
      for (const std::string &L : traceLines(C.T)) {
        FeedResult F = feedThreaded(*C.S, L);
        if (F.St != FeedResult::Status::Accepted) {
          Ok = false; // torn down by chaos; accounted, not comparable
          break;
        }
      }
      C.S->close();
      C.Completed = Ok;
    });
  for (std::thread &T : Producers)
    T.join();
  Svc.shutdown();

  size_t Compared = 0;
  for (Client &C : Clients) {
    CloseReason R = C.S->closeReason();
    if (!C.Completed || (R != CloseReason::ClientClose &&
                         R != CloseReason::ServiceShutdown))
      continue;
    ++Compared;
    EXPECT_EQ(varKeys(C.S->takeVerdicts()),
              oracleKeys(C.T, SC.Engine.Semantics))
        << "client " << C.S->clientId();
  }
  EXPECT_GT(Compared, 0u) << "every client was torn down — no coverage";
  ServiceHealth H = Svc.health();
  EXPECT_EQ(H.ActiveSessions, 0u);
  // Byte accounting is exact: bytes are reserved before publication and
  // every pop/discard subtracts what was added, so the gauge returns to
  // zero and the high-water mark can never wrap past the budget.
  EXPECT_EQ(H.QueuedBytes, 0u);
  EXPECT_LE(H.QueuedBytesHighWater, SC.MaxQueuedBytes);
  if (Compared == K) {
    EXPECT_EQ(H.VerdictLossEvents, 0u);
  }
}

} // namespace

TEST(ServiceSoakTest, EightConcurrentClientsMatchTheOracle) {
  ServiceConfig SC;
  SC.Shards = 4;
  threadedSoak(SC, /*BaseSeed=*/100, /*K=*/8);
}

TEST(ServiceSoakTest, SurvivesTinyRingsUnderConcurrency) {
  // Constant backpressure: every producer hits the retry path repeatedly,
  // and the byte budget stays bounded throughout.
  ServiceConfig SC;
  SC.Shards = 2;
  SC.RingCapacity = 8;
  SC.MaxQueuedBytes = 512;
  threadedSoak(SC, /*BaseSeed=*/200, /*K=*/8);
}

TEST(ServiceSoakTest, ChaosFailpointSweepStaysExactForSurvivors) {
  struct Sweep {
    Failpoint F;
    uint32_t Ppm;
  };
  const Sweep Sweeps[] = {
      {Failpoint::ServiceIngestStall, 5000},
      {Failpoint::ServiceClientHang, 5000},
      {Failpoint::ServiceShardWedge, 3000},
  };
  uint64_t Seed = 300;
  for (const Sweep &S : Sweeps) {
    FailpointConfig FC;
    FC.Seed = Seed;
    FC.StallMicros = 5;
    FC.rate(S.F, S.Ppm);
    FailpointScope Chaos(FC);
    ServiceConfig SC;
    SC.Shards = 4;
    threadedSoak(SC, Seed, /*K=*/8);
    Seed += 17;
  }
  // And everything at once.
  FailpointConfig FC;
  FC.Seed = Seed;
  FC.StallMicros = 5;
  for (const Sweep &S : Sweeps)
    FC.rate(S.F, S.Ppm);
  FailpointScope Chaos(FC);
  ServiceConfig SC;
  SC.Shards = 4;
  threadedSoak(SC, Seed, /*K=*/8);
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

TEST(ServiceTest, TelemetryExposesServiceCountersAndLatency) {
  ServiceConfig SC;
  SC.Telemetry = TelemetryLevel::Full;
  DetectionService Svc(SC);
  auto R = Svc.open(1);
  ASSERT_NE(R.S, nullptr);
  feedAllInline(Svc, *R.S,
                {"fork 0 1", "write 0 5 0", "write 1 5 0"});
  Svc.drain();
  TelemetrySnapshot Snap = Svc.telemetry();
  auto Counter = [&](const std::string &Name) -> int64_t {
    for (const auto &KV : Snap.Counters)
      if (KV.first == Name)
        return static_cast<int64_t>(KV.second);
    return -1;
  };
  EXPECT_EQ(Counter("service.lines_accepted"), 3);
  EXPECT_EQ(Counter("service.races_delivered"), 1);
  EXPECT_EQ(Counter("service.verdict_loss_events"), 0);
  bool SawLatency = false;
  for (const HistogramSnapshot &H : Snap.Histograms)
    SawLatency |= H.Name == "service.ingest_latency_nanos";
  EXPECT_TRUE(SawLatency) << "Full telemetry must record ingest latency";
  std::string Json = Snap.json("test");
  EXPECT_NE(Json.find("gold-metrics-v1"), std::string::npos);
  EXPECT_NE(Json.find("service.actions_routed"), std::string::npos);
}
