//===- tests/SlabTest.cpp - Slab allocator + recycling differential -------===//
///
/// The slab arena (src/support/Slab.h) and its integration with the engine
/// are load-bearing for memory safety: retired sync-event cells are
/// *recycled* through epoch/quarantine reclamation instead of returned to
/// the heap, so a lifetime bug shows up as a wrong verdict or a sanitizer
/// report rather than a crash. This suite attacks that from three sides:
///
///  * direct unit tests of SlabArena (alignment, recycling, page-granular
///    byte accounting, the pooled/passthrough split, cross-thread reuse
///    through the global free list, magazine survival across arena death);
///
///  * a single-process differential sweep: seeded random traces replayed
///    under every {slab pooling} x {append batching} configuration with a
///    tiny GC threshold, so cells are freed and recycled hundreds of times
///    per run — every configuration must report exactly the reference
///    detector's verdicts and keep the cell accounting identity;
///
///  * a true multi-threaded stress with parked readers: EngineReaderPark /
///    EngineRetainStall failpoints hold epoch read sections open past a
///    short grace deadline, forcing retired chains through the quarantine
///    while other threads keep allocating from the same slab. A cell that
///    was recycled while a timed-out reader could still hold it is exactly
///    what ASan's poisoning of freed slots catches here; verdicts are
///    cross-checked against the reference algorithm on the observed
///    linearization.
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "event/RandomTrace.h"
#include "support/Failpoints.h"
#include "support/Slab.h"
#include "support/Telemetry.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

using namespace gold;

namespace {

std::set<VarId> racyVarSet(const std::vector<RaceReport> &Races) {
  std::set<VarId> Out;
  for (const RaceReport &R : Races)
    Out.insert(R.Var);
  return Out;
}

//===----------------------------------------------------------------------===//
// SlabArena unit tests
//===----------------------------------------------------------------------===//

TEST(SlabArenaTest, SlotsAreCacheLineAlignedAndRounded) {
  SlabArena A(/*ObjectBytes=*/24);
  EXPECT_EQ(A.slotBytes() % 64, 0u);
  EXPECT_GE(A.slotBytes(), 24u);
  void *P = A.allocate();
  void *Q = A.allocate();
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % 64, 0u);
  A.deallocate(P);
  A.deallocate(Q);
}

TEST(SlabArenaTest, PooledRecyclesTheSameSlot) {
  SlabArena A(/*ObjectBytes=*/64);
  void *P = A.allocate();
  A.deallocate(P);
  // Same-thread magazine is LIFO: the very next allocation reuses the slot.
  void *Q = A.allocate();
  EXPECT_EQ(P, Q);
  A.deallocate(Q);
}

TEST(SlabArenaTest, PooledAccountsWholePagesAndNeverShrinks) {
  SlabArena A(/*ObjectBytes=*/64, /*Pooled=*/true, /*PageBytes=*/4096);
  EXPECT_EQ(A.bytesReserved(), 0u);
  std::vector<void *> Ps;
  for (int I = 0; I != 100; ++I) // > one page of 64-byte slots
    Ps.push_back(A.allocate());
  EXPECT_GT(A.pagesAllocated(), 1u);
  EXPECT_EQ(A.bytesReserved(), A.pagesAllocated() * 4096);
  size_t Peak = A.bytesReserved();
  for (void *P : Ps)
    A.deallocate(P);
  // Pages are retained for reuse (that is what makes recycling safe for
  // quarantined cells) — the reservation must not shrink before death.
  EXPECT_EQ(A.bytesReserved(), Peak);
}

TEST(SlabArenaTest, PassthroughAccountsLiveSlotsOnly) {
  SlabArena A(/*ObjectBytes=*/64, /*Pooled=*/false);
  void *P = A.allocate();
  void *Q = A.allocate();
  EXPECT_EQ(A.bytesReserved(), 2 * A.slotBytes());
  EXPECT_EQ(A.pagesAllocated(), 0u);
  A.deallocate(P);
  EXPECT_EQ(A.bytesReserved(), A.slotBytes());
  A.deallocate(Q);
  EXPECT_EQ(A.bytesReserved(), 0u);
}

TEST(SlabArenaTest, CrossThreadFreeFlowsBackThroughGlobalList) {
  SlabArena A(/*ObjectBytes=*/64, /*Pooled=*/true, /*PageBytes=*/4096);
  // One thread allocates and frees enough slots that its magazine must
  // flush batches to the global free list; the main thread then draws the
  // same page's slots back out without growing the reservation.
  std::vector<void *> Ps;
  std::thread Producer([&] {
    for (int I = 0; I != 64; ++I)
      Ps.push_back(A.allocate());
    for (void *P : Ps)
      A.deallocate(P);
  });
  Producer.join();
  // The dead thread's magazine strands up to Cap slots (lost to the pool,
  // reclaimed at arena death); its overflow flushes — half-capacity
  // batches — reached the global list and are reusable from here.
  size_t Reserved = A.bytesReserved();
  std::vector<void *> Qs;
  for (int I = 0; I != 24; ++I) // forces refills from the global list
    Qs.push_back(A.allocate());
  EXPECT_EQ(A.bytesReserved(), Reserved) << "reuse must not grow the arena";
  for (void *Q : Qs)
    A.deallocate(Q);
}

TEST(SlabArenaTest, MagazinesSurviveArenaDeathByGeneration) {
  // Thread-local magazines are keyed by a process-unique arena generation,
  // so entries for a destroyed arena are inert and a new arena (possibly
  // at the same address) starts clean. Churn several arenas through one
  // thread to force magazine claims, evictions and stale entries.
  for (int Round = 0; Round != 8; ++Round) {
    SlabArena A(/*ObjectBytes=*/128);
    void *P = A.allocate();
    void *Q = A.allocate();
    A.deallocate(P);
    A.deallocate(Q); // left in this arena's magazine as it dies
  }
  SlabArena Fresh(/*ObjectBytes=*/128);
  void *P = Fresh.allocate(); // must come from Fresh, not a dead magazine
  EXPECT_EQ(Fresh.bytesReserved(), Fresh.pagesAllocated() * 4096);
  Fresh.deallocate(P);
}

//===----------------------------------------------------------------------===//
// Differential sweep across allocator/batching configurations
//===----------------------------------------------------------------------===//

RandomTraceParams slabParams(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = 0x51AB ^ Seed;
  P.NumThreads = 2 + Seed % 4;
  P.NumObjects = 2 + Seed % 5;
  P.DataFields = 1 + Seed % 3;
  P.VolatileFields = Seed % 2;
  if (P.VolatileFields == 0)
    P.WVolRead = P.WVolWrite = 0;
  P.StepsPerThread = 60 + static_cast<unsigned>(Seed % 60);
  P.WBeginTxn = Seed % 3 ? 1 : 0;
  return P;
}

/// Cell accounting identity, valid even with a non-empty quarantine:
/// sentinel + allocated - freed = live list + quarantined.
void checkCellAccounting(GoldilocksEngine &E) {
  EngineStats St = E.stats();
  EngineHealth H = E.health();
  EXPECT_EQ(E.eventListLength() + H.QuarantinedCells,
            1 + St.CellsAllocated - St.CellsFreed);
}

TEST(SlabDifferentialTest, AllConfigsMatchReferenceUnderHeavyRecycling) {
  struct Config {
    const char *Name;
    bool Pooling;
    unsigned Batch;
  };
  const Config Configs[] = {
      {"pooled+batch", true, 8},
      {"pooled", true, 1},
      {"passthrough+batch", false, 8},
      {"passthrough", false, 1},
  };

  uint64_t TotalFreed = 0, TotalBatched = 0;
  for (uint64_t Seed = 0; Seed != 24; ++Seed) {
    Trace T = generateRandomTrace(slabParams(Seed));
    std::set<VarId> Reference =
        racyVarSet(GoldilocksReferenceDetector().runTrace(T));

    for (const Config &C : Configs) {
      SCOPED_TRACE(testing::Message() << "seed=" << Seed << " " << C.Name);
      EngineConfig EC;
      EC.GcThreshold = 32; // churn: free and recycle cells constantly
      EC.EnableSlabPooling = C.Pooling;
      EC.AppendBatchSize = C.Batch;
      GoldilocksDetector D(EC);
      std::set<VarId> Got = racyVarSet(D.runTrace(T));
      EXPECT_EQ(Got, Reference);
      checkCellAccounting(D.engine());

      EngineStats St = D.engine().stats();
      TotalFreed += St.CellsFreed;
      if (C.Batch > 1)
        TotalBatched += St.BatchPublishes;
    }
  }
  // The sweep must actually exercise recycling and batch publication,
  // otherwise the equalities above prove nothing about them.
  EXPECT_GT(TotalFreed, 0u) << "GC never freed a cell";
  EXPECT_GT(TotalBatched, 0u) << "no batch was ever published";
}

//===----------------------------------------------------------------------===//
// Recycling across quarantine flushes under parked readers
//===----------------------------------------------------------------------===//

/// Minimal ticketed logging harness (ConcurrencyTest's pattern): every
/// engine call is logged with a global ticket taken adjacent to the call,
/// so the sorted log is a legal linearization to replay through the
/// reference detector.
struct LoggedOp {
  uint64_t Tick = 0;
  Action A;
};

struct StressHarness {
  explicit StressHarness(const EngineConfig &C) : Det(C) {}

  GoldilocksDetector Det;
  std::atomic<uint64_t> Ticket{0};
  std::vector<std::vector<LoggedOp>> Logs;
  std::vector<std::vector<VarId>> Reported;

  void log(unsigned Slot, ActionKind K, ThreadId T, VarId V = VarId{},
           ThreadId Target = NoThread) {
    Action A;
    A.Kind = K;
    A.Thread = T;
    A.Var = V;
    A.Target = Target;
    Logs[Slot].push_back({Ticket.fetch_add(1, std::memory_order_relaxed), A});
  }

  Trace mergedTrace() {
    std::vector<const LoggedOp *> All;
    for (const auto &L : Logs)
      for (const LoggedOp &Op : L)
        All.push_back(&Op);
    std::sort(All.begin(), All.end(),
              [](const LoggedOp *A, const LoggedOp *B) {
                return A->Tick < B->Tick;
              });
    TraceBuilder B;
    for (const LoggedOp *Op : All)
      B.append(Op->A);
    return B.take();
  }
};

/// N worker threads churn lock-protected and private data (slab-heavy,
/// race-free by construction) while thread pairs (1,2) race on one field
/// with no synchronization at all. Short grace deadline + parked readers
/// force retired chains through the quarantine while the slab keeps
/// recycling — under ASan a premature reuse of a held cell is a poisoned
/// access, under TSan an unordered one.
void runQuarantineStress(bool Pooling, unsigned Batch) {
  SCOPED_TRACE(testing::Message()
               << "pooling=" << Pooling << " batch=" << Batch);
  constexpr unsigned NumThreads = 4;
  constexpr unsigned Iters = 300;
  constexpr ObjectId LockBase = 100; // + tid
  constexpr ObjectId PrivBase = 200; // + tid, 4 fields
  constexpr ObjectId RacyObj = 300;  // field 0: threads 1,2 deliberate race

  EngineConfig C;
  C.GcThreshold = 128;          // constant reclamation pressure
  C.GraceDeadlineMicros = 1000; // parked readers blow this deadline
  C.EnableSlabPooling = Pooling;
  C.AppendBatchSize = Batch;
  // Full telemetry plus an attached trace sink: the instrumentation after a
  // batch publish reads from the just-published chain while a concurrent
  // collection may already be reclaiming it, so the recording paths must
  // run under this stress (ASan/TSan guard the regression).
  C.Telemetry = TelemetryLevel::Full;
  TraceEventSink Sink;

  StressHarness H(C);
  H.Det.engine().attachTraceSink(&Sink);
  H.Logs.resize(NumThreads + 1);
  H.Reported.resize(NumThreads + 1);

  std::vector<std::mutex> Locks(NumThreads + 1);
  for (unsigned I = 1; I <= NumThreads; ++I) {
    H.log(0, ActionKind::Alloc, 0, VarId{LockBase + I, 1});
    H.Det.onAlloc(0, LockBase + I, 1);
    H.log(0, ActionKind::Alloc, 0, VarId{PrivBase + I, 4});
    H.Det.onAlloc(0, PrivBase + I, 4);
  }
  H.log(0, ActionKind::Alloc, 0, VarId{RacyObj, 1});
  H.Det.onAlloc(0, RacyObj, 1);

  FailpointConfig FC;
  FC.Seed = 0x9A7E;
  FC.StallMicros = 2000; // 2ms parks >> 1ms grace deadline
  FC.rate(Failpoint::EngineReaderPark, 3000)   // 0.3% of read sections
      .rate(Failpoint::EngineRetainStall, 3000) // TOCTOU window holds
      // Park publishers between epoch exit and the post-publish
      // instrumentation so concurrent reclamation can overtake the batch:
      // the recording paths must not touch the published chain.
      .rate(Failpoint::EnginePublishStall, 200000);

  auto Worker = [&](ThreadId Tid) {
    VarId Racy{RacyObj, 0};
    for (unsigned I = 0; I != Iters; ++I) {
      ObjectId L = LockBase + Tid;
      {
        std::lock_guard<std::mutex> G(Locks[Tid]);
        H.log(Tid, ActionKind::Acquire, Tid, lockVar(L));
        H.Det.onAcquire(Tid, L);
        for (FieldId F = 0; F != 4; ++F) {
          VarId V{PrivBase + Tid, F};
          H.log(Tid, ActionKind::Write, Tid, V);
          if (auto R = H.Det.onWrite(Tid, V))
            H.Reported[Tid].push_back(R->Var);
          H.log(Tid, ActionKind::Read, Tid, V);
          if (auto R = H.Det.onRead(Tid, V))
            H.Reported[Tid].push_back(R->Var);
        }
        H.log(Tid, ActionKind::Release, Tid, lockVar(L));
        H.Det.onRelease(Tid, L);
      }
      if (Tid <= 2 && I % 50 == 25) { // the deliberate, schedule-free race
        H.log(Tid, Tid == 1 ? ActionKind::Write : ActionKind::Read, Tid,
              Racy);
        if (Tid == 1) {
          if (auto R = H.Det.onWrite(Tid, Racy))
            H.Reported[Tid].push_back(R->Var);
        } else if (auto R = H.Det.onRead(Tid, Racy)) {
          H.Reported[Tid].push_back(R->Var);
        }
      }
    }
    H.log(Tid, ActionKind::Terminate, Tid);
    H.Det.onTerminate(Tid);
  };

  std::vector<std::thread> Threads;
  {
    FailpointScope Scope(FC);
    for (unsigned I = 1; I <= NumThreads; ++I) {
      H.log(0, ActionKind::Fork, 0, VarId{}, I);
      H.Det.onFork(0, I);
      Threads.emplace_back(Worker, static_cast<ThreadId>(I));
    }
    for (unsigned I = 1; I <= NumThreads; ++I) {
      Threads[I - 1].join();
      H.log(0, ActionKind::Join, 0, VarId{}, I);
      H.Det.onJoin(0, I);
    }
  }
  H.log(0, ActionKind::Terminate, 0);
  H.Det.onTerminate(0);

  // Differential: the engine's verdicts equal the reference algorithm's on
  // the observed linearization — exactly {RacyObj.0}.
  std::set<VarId> Engine;
  for (const auto &R : H.Reported)
    Engine.insert(R.begin(), R.end());
  std::set<VarId> Reference =
      racyVarSet(GoldilocksReferenceDetector().runTrace(H.mergedTrace()));
  EXPECT_EQ(Engine, Reference);
  const std::set<VarId> Expected = {VarId{RacyObj, 0}};
  EXPECT_EQ(Reference, Expected)
      << "workload is racy-by-construction on exactly one variable";
  checkCellAccounting(H.Det.engine());

  // The run must have pushed chains through the quarantine (that is the
  // recycling path under test) — otherwise lower the deadline further.
  EngineStats St = H.Det.engine().stats();
  EXPECT_GT(St.CellsQuarantined, 0u) << "no chain was ever quarantined";
  EXPECT_GT(St.CellsFreed, 0u);

  // The sink must have seen the instrumented phases, or the telemetry
  // recording paths were never stressed at all.
  EXPECT_GT(Sink.size(), 0u) << "trace sink recorded nothing";
  if (Batch > 1) {
    EXPECT_GT(St.BatchPublishes, 0u);
    EXPECT_NE(Sink.json().find("\"publish\""), std::string::npos)
        << "no publish span was ever recorded";
  }
}

/// Deterministic replay of the post-publish reclaim race: the publisher
/// parks (engine-publish-stall failpoint) between closing its epoch section
/// and recording the publish span / flight-recorder entry, while the main
/// thread drives enough collections to free the just-published batch. The
/// instrumentation must read nothing from the published chain — under ASan
/// a violation is a heap-use-after-free, under TSan an unordered access.
TEST(SlabQuarantineStressTest, PublishInstrumentationSurvivesReclaim) {
  constexpr unsigned Batch = 8;

  EngineConfig C;
  C.GcThreshold = Batch;      // collect on nearly every enqueue
  C.EnableSlabPooling = false; // freed cells return to the heap (ASan UAF)
  C.AppendBatchSize = Batch;
  C.Telemetry = TelemetryLevel::Full; // flight recorder attached
  TraceEventSink Sink;

  GoldilocksDetector D(C);
  D.engine().attachTraceSink(&Sink);

  FailpointConfig FC;
  FC.StallMicros = 50000; // 50ms park: the GC driver below needs ~µs
  FC.rate(Failpoint::EnginePublishStall, 1000000);
  FailpointScope Scope(FC);

  D.onFork(0, 1);
  size_t Before = D.engine().eventListLength();
  std::thread Publisher([&] {
    // Acquires are batchable: the Batch'th one publishes the whole chain
    // and parks at the failpoint with the instrumentation still pending.
    for (unsigned I = 0; I != Batch; ++I)
      D.onAcquire(1, /*Lock=*/500 + I);
  });

  // Wait until the batch is appended (ListLen moves before the park), then
  // drive collections past it: the acquire cells carry no Info references,
  // so the trimmed prefix swallows the parked publisher's chain.
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (D.engine().eventListLength() < Before + Batch &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::yield();
  EXPECT_GE(D.engine().eventListLength(), Before + Batch)
      << "batch was never published";
  for (unsigned I = 0; I != 4 * Batch; ++I)
    D.onVolatileWrite(0, VarId{900, 0});
  EXPECT_GT(D.engine().stats().CellsFreed, 0u)
      << "collections never freed the published chain";

  Publisher.join();
  D.onJoin(0, 1);
  D.onTerminate(1);
  D.onTerminate(0);
  checkCellAccounting(D.engine());
  EXPECT_NE(Sink.json().find("\"publish\""), std::string::npos)
      << "no publish span was recorded";
}

TEST(SlabQuarantineStressTest, PooledWithBatching) {
  runQuarantineStress(/*Pooling=*/true, /*Batch=*/8);
}

TEST(SlabQuarantineStressTest, PooledNoBatching) {
  runQuarantineStress(/*Pooling=*/true, /*Batch=*/1);
}

TEST(SlabQuarantineStressTest, PassthroughWithBatching) {
  runQuarantineStress(/*Pooling=*/false, /*Batch=*/8);
}

} // namespace
