//===- tests/DifferentialHarness.h - shared differential machinery -*- C++ -*-//
///
/// \file
/// The one reusable differential-test harness every cross-detector suite
/// builds on (ConcurrencyTest, ChaosTest, DifferentialTest, TierTest,
/// ServiceTest). Three layers:
///
///  * verdict-set helpers — project race reports / oracle output down to the
///    per-variable verdict sets the suites compare, plus a gtest
///    predicate-formatter that renders a per-variable diff (missing vs.
///    invented) instead of gtest's opaque set printout;
///
///  * seeded trace-shape builders — the canonical RandomTraceParams shapes
///    the sweeps share, so "the chaos shape at seed S" means the same trace
///    in every suite that replays it;
///
///  * the ticketed concurrency harness — N real OS threads hammer one
///    detector through logged wrappers; every call takes a global ticket
///    while the *real* synchronization ordering it is held, so sorting by
///    ticket yields a legal linearization that can be replayed post-hoc
///    through the HB oracle and the eager reference algorithm.
///
/// Header-only and gtest-dependent by design: it is test machinery, not
/// product code, and each suite instantiates only what it uses.
///
//===----------------------------------------------------------------------===//

#ifndef GOLD_TESTS_DIFFERENTIALHARNESS_H
#define GOLD_TESTS_DIFFERENTIALHARNESS_H

#include "detectors/GoldilocksDetectors.h"
#include "event/RandomTrace.h"
#include "hb/HbOracle.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace gold {
namespace difftest {

//===----------------------------------------------------------------------===//
// Verdict sets and per-variable diffing
//===----------------------------------------------------------------------===//

/// The per-variable verdict set of a report stream.
inline std::set<VarId> racyVarSet(const std::vector<RaceReport> &Races) {
  std::set<VarId> Out;
  for (const RaceReport &R : Races)
    Out.insert(R.Var);
  return Out;
}

/// Same projection keyed by VarId::key(), for suites (the service tests)
/// that compare across detector instances where VarId itself is awkward.
inline std::set<uint64_t> racyKeySet(const std::vector<RaceReport> &Races) {
  std::set<uint64_t> Out;
  for (const RaceReport &R : Races)
    Out.insert(R.Var.key());
  return Out;
}

/// The HB oracle's racy-variable verdict set for a trace.
inline std::set<VarId>
oracleVarSet(const Trace &T,
             TxnSyncSemantics Sem = TxnSyncSemantics::SharedVariable) {
  RaceOracle O(T, Sem);
  std::set<VarId> Out;
  for (VarId V : O.racyVars())
    Out.insert(V);
  return Out;
}

/// Oracle verdicts keyed by VarId::key().
inline std::set<uint64_t>
oracleKeySet(const Trace &T,
             TxnSyncSemantics Sem = TxnSyncSemantics::SharedVariable) {
  RaceOracle O(T, Sem);
  std::set<uint64_t> Out;
  for (const VarId &V : O.racyVars())
    Out.insert(V.key());
  return Out;
}

/// The eager reference algorithm's verdict set for a trace.
inline std::set<VarId> referenceVarSet(const Trace &T) {
  GoldilocksReferenceDetector Ref;
  return racyVarSet(Ref.runTrace(T));
}

inline std::string describe(const std::set<VarId> &S) {
  std::string Out = "{";
  for (VarId V : S)
    Out += V.str() + " ";
  return Out + "}";
}

/// Renders the per-variable difference between two verdict sets: which
/// variables the candidate missed and which it invented relative to the
/// expected set. Empty string when they agree.
inline std::string verdictDiff(const std::set<VarId> &Expected,
                               const std::set<VarId> &Got) {
  std::set<VarId> Missed, Invented;
  std::set_difference(Expected.begin(), Expected.end(), Got.begin(), Got.end(),
                      std::inserter(Missed, Missed.begin()));
  std::set_difference(Got.begin(), Got.end(), Expected.begin(), Expected.end(),
                      std::inserter(Invented, Invented.begin()));
  if (Missed.empty() && Invented.empty())
    return "";
  std::string Out;
  if (!Missed.empty())
    Out += "missed " + describe(Missed);
  if (!Invented.empty()) {
    if (!Out.empty())
      Out += ", ";
    Out += "invented " + describe(Invented);
  }
  return Out;
}

/// gtest predicate-formatter: EXPECT_PRED_FORMAT2(sameVerdicts, Exp, Got)
/// fails with the per-variable diff instead of two raw set dumps.
inline ::testing::AssertionResult sameVerdicts(const char *ExpectedExpr,
                                               const char *GotExpr,
                                               const std::set<VarId> &Expected,
                                               const std::set<VarId> &Got) {
  std::string Diff = verdictDiff(Expected, Got);
  if (Diff.empty())
    return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << GotExpr << " disagrees with " << ExpectedExpr << ": " << Diff
         << "\n  expected " << describe(Expected) << "\n  got      "
         << describe(Got);
}

//===----------------------------------------------------------------------===//
// Seeded trace-shape builders
//===----------------------------------------------------------------------===//

/// The differential-sweep shape: sparse and dense conflict patterns, heavy
/// and light transaction mixes, all driven off the seed.
inline RandomTraceParams sweepParams(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.NumThreads = 2 + static_cast<ThreadId>(Seed % 4);
  P.NumObjects = 2 + static_cast<ObjectId>(Seed % 5);
  P.DataFields = 1 + static_cast<FieldId>(Seed % 3);
  P.StepsPerThread = 30 + static_cast<unsigned>(Seed % 50);
  P.WBeginTxn = static_cast<unsigned>(Seed % 3);
  return P;
}

/// The chaos-sweep shape: adds volatile-field variation and longer runs so
/// fault injection has room to fire.
inline RandomTraceParams chaosParams(uint64_t Seed) {
  RandomTraceParams P;
  P.Seed = 0xC0FFEE ^ Seed;
  P.NumThreads = 2 + Seed % 4;
  P.NumObjects = 2 + Seed % 6;
  P.DataFields = 1 + Seed % 3;
  P.VolatileFields = Seed % 2;
  if (P.VolatileFields == 0)
    P.WVolRead = P.WVolWrite = 0;
  P.StepsPerThread = 40 + static_cast<unsigned>(Seed % 80);
  P.WBeginTxn = Seed % 3 ? 1 : 0;
  return P;
}

//===----------------------------------------------------------------------===//
// Ticketed true-concurrency harness
//===----------------------------------------------------------------------===//

/// One logged engine call. Tick is taken adjacent to the call, under the
/// same real synchronization, so sorting by Tick yields a linearization
/// consistent with the extended happens-before order of the execution.
struct LoggedOp {
  uint64_t Tick = 0;
  Action A;
  CommitSets CS; // payload when A.Kind == Commit
};

inline Action mkAct(ActionKind K, ThreadId T, VarId V = VarId{},
                    ThreadId Target = NoThread) {
  Action A;
  A.Kind = K;
  A.Thread = T;
  A.Var = V;
  A.Target = Target;
  return A;
}

/// Per-worker recording: the op log and the race verdicts the engine
/// returned to this thread. Threads only touch their own recorder.
struct Recorder {
  std::vector<LoggedOp> Log;
  std::vector<VarId> ReportedRacy;

  void note(std::optional<RaceReport> R) {
    if (R)
      ReportedRacy.push_back(R->Var);
  }
  void note(const std::vector<RaceReport> &Rs) {
    for (const RaceReport &R : Rs)
      ReportedRacy.push_back(R.Var);
  }
};

/// Shared test state: the detector under test and the global ticket.
struct Harness {
  explicit Harness(EngineConfig C) : Det(C) {}

  GoldilocksDetector Det;
  std::atomic<uint64_t> Ticket{0};

  uint64_t tick() { return Ticket.fetch_add(1, std::memory_order_relaxed); }

  void log(Recorder &R, Action A) { R.Log.push_back({tick(), A, {}}); }
  void logCommit(Recorder &R, ThreadId T, const CommitSets &CS) {
    LoggedOp Op;
    Op.Tick = tick();
    Op.A = mkAct(ActionKind::Commit, T);
    Op.CS = CS;
    R.Log.push_back(std::move(Op));
  }

  // Logged wrappers over the detector interface. The data-access wrappers
  // note the verdict so the per-thread recorder carries what the engine
  // reported to this thread.
  void alloc(Recorder &R, ThreadId T, ObjectId O, uint32_t Fields) {
    log(R, mkAct(ActionKind::Alloc, T, VarId{O, Fields}));
    Det.onAlloc(T, O, Fields);
  }
  void read(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::Read, T, V));
    R.note(Det.onRead(T, V));
  }
  void write(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::Write, T, V));
    R.note(Det.onWrite(T, V));
  }
  void volRead(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::VolatileRead, T, V));
    Det.onVolatileRead(T, V);
  }
  void volWrite(Recorder &R, ThreadId T, VarId V) {
    log(R, mkAct(ActionKind::VolatileWrite, T, V));
    Det.onVolatileWrite(T, V);
  }
  void acq(Recorder &R, ThreadId T, ObjectId O) {
    log(R, mkAct(ActionKind::Acquire, T, lockVar(O)));
    Det.onAcquire(T, O);
  }
  void rel(Recorder &R, ThreadId T, ObjectId O) {
    log(R, mkAct(ActionKind::Release, T, lockVar(O)));
    Det.onRelease(T, O);
  }
  void fork(Recorder &R, ThreadId T, ThreadId Child) {
    log(R, mkAct(ActionKind::Fork, T, VarId{}, Child));
    Det.onFork(T, Child);
  }
  void join(Recorder &R, ThreadId T, ThreadId Child) {
    log(R, mkAct(ActionKind::Join, T, VarId{}, Child));
    Det.onJoin(T, Child);
  }
  void terminate(Recorder &R, ThreadId T) {
    log(R, mkAct(ActionKind::Terminate, T));
    Det.onTerminate(T);
  }
  void commitPoint(Recorder &R, ThreadId T, const CommitSets &CS) {
    logCommit(R, T, CS);
    Det.onCommitPoint(T, CS);
  }
  void commitFinish(Recorder &R, ThreadId T, const CommitSets &CS) {
    R.note(Det.onCommitFinish(T, CS));
  }
};

/// Merges the per-thread logs into the observed linearization.
inline Trace mergeTrace(std::vector<Recorder> &Recs) {
  std::vector<const LoggedOp *> All;
  for (const Recorder &R : Recs)
    for (const LoggedOp &Op : R.Log)
      All.push_back(&Op);
  std::sort(All.begin(), All.end(), [](const LoggedOp *A, const LoggedOp *B) {
    return A->Tick < B->Tick;
  });
  TraceBuilder B;
  for (const LoggedOp *Op : All) {
    if (Op->A.Kind == ActionKind::Commit)
      B.commit(Op->A.Thread, Op->CS.Reads, Op->CS.Writes);
    else
      B.append(Op->A);
  }
  return B.take();
}

/// The union of per-thread verdicts the live engine handed back.
inline std::set<VarId> engineVerdicts(const std::vector<Recorder> &Recs) {
  std::set<VarId> Out;
  for (const Recorder &R : Recs)
    Out.insert(R.ReportedRacy.begin(), R.ReportedRacy.end());
  return Out;
}

/// Post-run engine accounting invariants (quiescent state).
inline void checkEngineConsistency(GoldilocksEngine &E) {
  EngineStats St = E.stats();
  EngineHealth H = E.health();
  // The sentinel cell plus every allocated-and-not-freed cell is the list.
  EXPECT_EQ(E.eventListLength(), 1 + St.CellsAllocated - St.CellsFreed);
  EXPECT_EQ(H.EventListLength, E.eventListLength());
  EXPECT_GE(H.EventListHighWater, H.EventListLength);
  EXPECT_GE(H.InfoHighWater, H.InfoRecords);
  EXPECT_EQ(H.InfoRecords, E.infoRecordCount());
}

//===----------------------------------------------------------------------===//
// Seeded mixed-idiom true-concurrency workload
//===----------------------------------------------------------------------===//

// Object-id layout for the mixed-workload runs (one detector per run).
constexpr ObjectId PrivBase = 100;    // + thread id, 4 fields, thread-private
constexpr ObjectId OwnLockBase = 200; // + thread id, per-thread lock object
constexpr ObjectId PairLockBase = 250; // + pair, lock shared by a pair
constexpr ObjectId SharedBase = 300;  // + pair, data guarded by the pair lock
constexpr ObjectId RacyObj = 400;     // field p: pair p's deliberate race
constexpr ObjectId VolObj = 500;      // field p: pair p's volatile flag
constexpr ObjectId PubObj = 600;      // field p: pair p's published payload

/// Runs NumThreads real OS workers over the mixed idiom workload (private
/// data, lock-shared data, volatile publication, deliberate no-sync races)
/// and cross-checks the engine's verdicts against the HB oracle and the
/// reference algorithm. The workload is verdict-stable by construction:
/// every variable is race-free under every legal interleaving or racy under
/// every legal interleaving, so scheduling may vary freely.
///
/// Parameterized by EngineConfig so precision-preserving engine modes (short
/// circuit ablations, GC pressure, the tiered prefilter) can be driven
/// through real concurrency and still be held to the exact verdict. Returns
/// the final stats so callers can additionally assert on mode counters.
inline EngineStats runMixedWorkload(unsigned NumThreads, uint64_t Seed,
                                    EngineConfig C) {
  SCOPED_TRACE(testing::Message()
               << "threads=" << NumThreads << " seed=" << Seed);
  Harness H(C);
  std::vector<Recorder> Recs(NumThreads + 1);
  Recorder &Main = Recs[0];

  unsigned NumPairs = NumThreads / 2;
  // Real synchronization backing the harness protocols.
  std::vector<std::mutex> OwnLocks(NumThreads + 1);
  std::vector<std::mutex> PairLocks(NumPairs + 1);
  // One publish flag per pair: 0 = unpublished, 1 = published.
  std::vector<std::atomic<int>> Published(NumPairs + 1);
  for (auto &P : Published)
    P.store(0, std::memory_order_relaxed);

  // Main allocates every object up front, then forks the workers.
  for (unsigned I = 1; I <= NumThreads; ++I) {
    H.alloc(Main, 0, PrivBase + I, 4);
    H.alloc(Main, 0, OwnLockBase + I, 1);
  }
  for (unsigned P = 0; P != NumPairs; ++P) {
    H.alloc(Main, 0, PairLockBase + P, 1);
    H.alloc(Main, 0, SharedBase + P, 4);
  }
  H.alloc(Main, 0, RacyObj, NumPairs ? NumPairs : 1);
  H.alloc(Main, 0, VolObj, NumPairs ? NumPairs : 1);
  H.alloc(Main, 0, PubObj, NumPairs ? NumPairs : 1);

  // Even pairs race on RacyObj.f(pair); odd pairs publish through a
  // volatile and share data under their pair lock.
  std::set<VarId> Expected;
  for (unsigned P = 0; P < NumPairs; P += 2)
    Expected.insert(VarId{RacyObj, P});

  auto Worker = [&](ThreadId Tid) {
    Recorder &R = Recs[Tid];
    Random Rng(Seed * 7919 + Tid);
    unsigned Pair = (Tid - 1) / 2;
    bool HasPair = Pair < NumPairs;
    bool RacyPair = HasPair && (Pair % 2 == 0);
    bool PubPair = HasPair && (Pair % 2 == 1);
    bool Lower = (Tid % 2) == 1; // first thread of its pair
    VarId Priv{PrivBase + Tid, 0};
    bool PublishedMine = false;

    for (unsigned Step = 0; Step != 120; ++Step) {
      switch (Rng.nextBelow(10)) {
      default: { // private data, no synchronization needed
        VarId V{PrivBase + Tid, static_cast<FieldId>(Rng.nextBelow(4))};
        if (Rng.chance(1, 3))
          H.write(R, Tid, V);
        else
          H.read(R, Tid, V);
        break;
      }
      case 7: { // critical section on the thread's own lock
        ObjectId L = OwnLockBase + Tid;
        std::lock_guard<std::mutex> G(OwnLocks[Tid]);
        H.acq(R, Tid, L);
        H.write(R, Tid, Priv);
        H.read(R, Tid, Priv);
        H.rel(R, Tid, L);
        break;
      }
      case 8: { // pair-shared data under the pair lock (race-free)
        if (!PubPair)
          break;
        ObjectId L = PairLockBase + Pair;
        VarId V{SharedBase + Pair, static_cast<FieldId>(Rng.nextBelow(4))};
        std::lock_guard<std::mutex> G(PairLocks[Pair]);
        H.acq(R, Tid, L);
        if (Rng.chance(1, 2))
          H.write(R, Tid, V);
        else
          H.read(R, Tid, V);
        H.rel(R, Tid, L);
        break;
      }
      case 9: { // deliberate no-sync conflict (racy in every schedule)
        if (!RacyPair)
          break;
        VarId V{RacyObj, Pair};
        if (Lower || Rng.chance(1, 2))
          H.write(R, Tid, V);
        else
          H.read(R, Tid, V);
        break;
      }
      }
      // Volatile publication: the lower thread publishes once mid-run; the
      // upper thread consumes once the real flag says the payload (and its
      // volatile-write event) exists.
      if (PubPair && Lower && !PublishedMine && Step > 40) {
        H.write(R, Tid, VarId{PubObj, Pair});
        H.volWrite(R, Tid, VarId{VolObj, Pair});
        Published[Pair].store(1, std::memory_order_release);
        PublishedMine = true;
      }
      if (PubPair && !Lower && Step == 100) {
        while (Published[Pair].load(std::memory_order_acquire) == 0)
          std::this_thread::yield();
        H.volRead(R, Tid, VarId{VolObj, Pair});
        H.read(R, Tid, VarId{PubObj, Pair});
      }
    }
    // Guarantee the conflict for racy pairs even if the random mix never
    // rolled case 9: one unsynchronized write from the lower thread, one
    // unsynchronized read from the upper — unordered in every schedule.
    if (RacyPair) {
      if (Lower)
        H.write(R, Tid, VarId{RacyObj, Pair});
      else
        H.read(R, Tid, VarId{RacyObj, Pair});
    }
    H.terminate(R, Tid);
  };

  std::vector<std::thread> Threads;
  for (unsigned I = 1; I <= NumThreads; ++I) {
    H.fork(Main, 0, I);
    Threads.emplace_back(Worker, static_cast<ThreadId>(I));
  }
  for (unsigned I = 1; I <= NumThreads; ++I) {
    Threads[I - 1].join();
    H.join(Main, 0, I);
  }
  H.terminate(Main, 0);

  Trace Observed = mergeTrace(Recs);
  std::set<VarId> Engine = engineVerdicts(Recs);
  std::set<VarId> Oracle = oracleVarSet(Observed);
  std::set<VarId> Reference = referenceVarSet(Observed);

  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, Oracle)
      << "oracle disagrees with construction";
  EXPECT_PRED_FORMAT2(sameVerdicts, Oracle, Engine)
      << "engine disagrees with the HB oracle";
  EXPECT_PRED_FORMAT2(sameVerdicts, Oracle, Reference)
      << "reference disagrees with the HB oracle";
  checkEngineConsistency(H.Det.engine());
  return H.Det.engine().stats();
}

inline EngineStats runMixedWorkload(unsigned NumThreads, uint64_t Seed) {
  EngineConfig C;
  C.GcThreshold = 256; // keep GC + epoch reclamation in play
  return runMixedWorkload(NumThreads, Seed, C);
}

} // namespace difftest
} // namespace gold

#endif // GOLD_TESTS_DIFFERENTIALHARNESS_H
