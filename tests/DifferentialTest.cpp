//===- tests/DifferentialTest.cpp - Theorem 1 property tests --------------===//
///
/// Differential testing of every detector against the extended
/// happens-before oracle over randomly generated well-formed traces
/// (verdict machinery and seeded shapes from DifferentialHarness.h):
///
///  * Goldilocks (reference and engine, with several engine configurations)
///    must agree with the oracle exactly — Theorem 1 (sound and precise);
///  * the vector-clock baseline must also agree exactly;
///  * the reference and the engine must produce identical report sequences.
///
//===----------------------------------------------------------------------===//

#include "DifferentialHarness.h"

#include "detectors/Eraser.h"
#include "detectors/VectorClockDetector.h"

#include <set>

using namespace gold;
using namespace gold::difftest;

namespace {

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DifferentialTest, AllPreciseDetectorsMatchOracle) {
  uint64_t Seed = GetParam();
  Trace T = generateRandomTrace(sweepParams(Seed));

  std::set<VarId> Expected = oracleVarSet(T);

  GoldilocksReferenceDetector Ref;
  auto RefRaces = Ref.runTrace(T);
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, racyVarSet(RefRaces))
      << "reference vs oracle, seed " << Seed;

  GoldilocksDetector Engine;
  auto EngineRaces = Engine.runTrace(T);
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, racyVarSet(EngineRaces))
      << "engine vs oracle, seed " << Seed;

  // The engine and the reference must agree access-by-access.
  ASSERT_EQ(EngineRaces.size(), RefRaces.size()) << "seed " << Seed;
  for (size_t I = 0; I != EngineRaces.size(); ++I) {
    EXPECT_EQ(EngineRaces[I].Var, RefRaces[I].Var) << "seed " << Seed;
    EXPECT_EQ(EngineRaces[I].Thread, RefRaces[I].Thread) << "seed " << Seed;
    EXPECT_EQ(EngineRaces[I].IsWrite, RefRaces[I].IsWrite)
        << "seed " << Seed;
  }

  VectorClockDetector Vc;
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, racyVarSet(Vc.runTrace(T)))
      << "vector clock vs oracle, seed " << Seed;
}

TEST_P(DifferentialTest, EngineConfigurationsAgree) {
  RandomTraceParams P;
  P.Seed = GetParam() * 77 + 5;
  P.NumThreads = 3;
  P.NumObjects = 3;
  P.StepsPerThread = 60;
  P.WBeginTxn = 1;
  Trace T = generateRandomTrace(P);

  GoldilocksDetector Baseline;
  std::set<VarId> Expected = racyVarSet(Baseline.runTrace(T));

  // No short circuits at all.
  EngineConfig NoSc;
  NoSc.EnableXactShortCircuit = false;
  NoSc.EnableSameThreadShortCircuit = false;
  NoSc.EnableALockShortCircuit = false;
  NoSc.EnableFilteredWalk = false;
  GoldilocksDetector A(NoSc);
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, racyVarSet(A.runTrace(T)))
      << "no short circuits";

  // Aggressive garbage collection exercising partially-eager evaluation.
  EngineConfig SmallGc;
  SmallGc.GcThreshold = 24;
  SmallGc.TrimFraction = 0.5;
  GoldilocksDetector B(SmallGc);
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, racyVarSet(B.runTrace(T)))
      << "aggressive gc";
  EXPECT_LT(B.engine().eventListLength(), 200u);

  // Both, combined.
  EngineConfig Both = NoSc;
  Both.GcThreshold = 24;
  GoldilocksDetector C(Both);
  EXPECT_PRED_FORMAT2(sameVerdicts, Expected, racyVarSet(C.runTrace(T)))
      << "gc + no short circuits";
}

TEST_P(DifferentialTest, EraserIsImpreciseButCatchesUnprotectedConflicts) {
  // No exact containment holds for Eraser (it both over- and under-reports
  // relative to happens-before races); this documents that it stays within
  // sane bounds: it never reports a variable that only one thread touched.
  RandomTraceParams P;
  P.Seed = GetParam() * 131 + 17;
  Trace T = generateRandomTrace(P);
  EraserDetector E;
  auto Races = E.runTrace(T);
  for (const RaceReport &R : Races) {
    std::set<ThreadId> Writers;
    for (size_t I = 0; I != T.Actions.size(); ++I)
      if (T.accesses(I, R.Var))
        Writers.insert(T.Actions[I].Thread);
    EXPECT_GT(Writers.size(), 1u) << "seed " << P.Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 41));
