//===- tests/DifferentialTest.cpp - Theorem 1 property tests --------------===//
///
/// Differential testing of every detector against the extended
/// happens-before oracle over randomly generated well-formed traces:
///
///  * Goldilocks (reference and engine, with several engine configurations)
///    must agree with the oracle exactly — Theorem 1 (sound and precise);
///  * the vector-clock baseline must also agree exactly;
///  * the reference and the engine must produce identical report sequences.
///
//===----------------------------------------------------------------------===//

#include "detectors/Eraser.h"
#include "detectors/GoldilocksDetectors.h"
#include "detectors/VectorClockDetector.h"
#include "event/RandomTrace.h"
#include "hb/HbOracle.h"

#include <gtest/gtest.h>

#include <set>

using namespace gold;

namespace {

std::set<VarId> racyVarSet(const std::vector<RaceReport> &Races) {
  std::set<VarId> Out;
  for (const RaceReport &R : Races)
    Out.insert(R.Var);
  return Out;
}

std::set<VarId> oracleVarSet(const RaceOracle &O) {
  std::set<VarId> Out;
  for (VarId V : O.racyVars())
    Out.insert(V);
  return Out;
}

std::string describe(const std::set<VarId> &S) {
  std::string Out = "{";
  for (VarId V : S)
    Out += V.str() + " ";
  return Out + "}";
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(DifferentialTest, AllPreciseDetectorsMatchOracle) {
  RandomTraceParams P;
  P.Seed = GetParam();
  // Vary the shape with the seed so the sweep covers sparse and dense
  // conflict patterns, heavy and light transaction mixes.
  P.NumThreads = 2 + static_cast<ThreadId>(P.Seed % 4);
  P.NumObjects = 2 + static_cast<ObjectId>(P.Seed % 5);
  P.DataFields = 1 + static_cast<FieldId>(P.Seed % 3);
  P.StepsPerThread = 30 + static_cast<unsigned>(P.Seed % 50);
  P.WBeginTxn = static_cast<unsigned>(P.Seed % 3);
  Trace T = generateRandomTrace(P);

  RaceOracle Oracle(T);
  std::set<VarId> Expected = oracleVarSet(Oracle);

  GoldilocksReferenceDetector Ref;
  auto RefRaces = Ref.runTrace(T);
  EXPECT_EQ(racyVarSet(RefRaces), Expected)
      << "reference vs oracle, seed " << P.Seed << "\nexpected "
      << describe(Expected);

  GoldilocksDetector Engine;
  auto EngineRaces = Engine.runTrace(T);
  EXPECT_EQ(racyVarSet(EngineRaces), Expected)
      << "engine vs oracle, seed " << P.Seed;

  // The engine and the reference must agree access-by-access.
  ASSERT_EQ(EngineRaces.size(), RefRaces.size()) << "seed " << P.Seed;
  for (size_t I = 0; I != EngineRaces.size(); ++I) {
    EXPECT_EQ(EngineRaces[I].Var, RefRaces[I].Var) << "seed " << P.Seed;
    EXPECT_EQ(EngineRaces[I].Thread, RefRaces[I].Thread) << "seed " << P.Seed;
    EXPECT_EQ(EngineRaces[I].IsWrite, RefRaces[I].IsWrite)
        << "seed " << P.Seed;
  }

  VectorClockDetector Vc;
  EXPECT_EQ(racyVarSet(Vc.runTrace(T)), Expected)
      << "vector clock vs oracle, seed " << P.Seed;
}

TEST_P(DifferentialTest, EngineConfigurationsAgree) {
  RandomTraceParams P;
  P.Seed = GetParam() * 77 + 5;
  P.NumThreads = 3;
  P.NumObjects = 3;
  P.StepsPerThread = 60;
  P.WBeginTxn = 1;
  Trace T = generateRandomTrace(P);

  GoldilocksDetector Baseline;
  std::set<VarId> Expected = racyVarSet(Baseline.runTrace(T));

  // No short circuits at all.
  EngineConfig NoSc;
  NoSc.EnableXactShortCircuit = false;
  NoSc.EnableSameThreadShortCircuit = false;
  NoSc.EnableALockShortCircuit = false;
  NoSc.EnableFilteredWalk = false;
  GoldilocksDetector A(NoSc);
  EXPECT_EQ(racyVarSet(A.runTrace(T)), Expected) << "no short circuits";

  // Aggressive garbage collection exercising partially-eager evaluation.
  EngineConfig SmallGc;
  SmallGc.GcThreshold = 24;
  SmallGc.TrimFraction = 0.5;
  GoldilocksDetector B(SmallGc);
  EXPECT_EQ(racyVarSet(B.runTrace(T)), Expected) << "aggressive gc";
  EXPECT_LT(B.engine().eventListLength(), 200u);

  // Both, combined.
  EngineConfig Both = NoSc;
  Both.GcThreshold = 24;
  GoldilocksDetector C(Both);
  EXPECT_EQ(racyVarSet(C.runTrace(T)), Expected) << "gc + no short circuits";
}

TEST_P(DifferentialTest, EraserIsImpreciseButCatchesUnprotectedConflicts) {
  // No exact containment holds for Eraser (it both over- and under-reports
  // relative to happens-before races); this documents that it stays within
  // sane bounds: it never reports a variable that only one thread touched.
  RandomTraceParams P;
  P.Seed = GetParam() * 131 + 17;
  Trace T = generateRandomTrace(P);
  EraserDetector E;
  auto Races = E.runTrace(T);
  for (const RaceReport &R : Races) {
    std::set<ThreadId> Writers;
    for (size_t I = 0; I != T.Actions.size(); ++I)
      if (T.accesses(I, R.Var))
        Writers.insert(T.Actions[I].Thread);
    EXPECT_GT(Writers.size(), 1u) << "seed " << P.Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 41));
