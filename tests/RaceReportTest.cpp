//===- tests/RaceReportTest.cpp - Race provenance report tests ------------===//
///
/// The PR-5 observability contract for race reports:
///
///  * the witness pair (threads, access kinds, variable) of every engine
///    report matches the extended happens-before oracle's derivation, on
///    deterministic scenario traces and across a random sweep;
///  * the attached provenance is a valid synchronization-order chain: every
///    replayed step is a sync event, step sequence numbers are strictly
///    increasing and confined to the walked window (PriorSeq, Seq], and the
///    rendered lockset evolution is present at every step;
///  * the JSON rendering round-trips: a minimal parser (in this test)
///    recovers every witness/provenance field from RaceReport::toJson.
///
//===----------------------------------------------------------------------===//

#include "detectors/GoldilocksDetectors.h"
#include "event/RandomTrace.h"
#include "event/Trace.h"
#include "hb/HbOracle.h"
#include "support/Json.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

using namespace gold;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON parser — just enough to round-trip our own emitter.
//===----------------------------------------------------------------------===//

struct JsonValue {
  enum Type { Null, Bool, Num, Str, Arr, Obj } T = Null;
  bool B = false;
  double N = 0;
  std::string S;
  std::vector<JsonValue> A;
  std::map<std::string, JsonValue> O;

  const JsonValue &at(const std::string &Key) const {
    static const JsonValue Missing;
    auto It = O.find(Key);
    return It == O.end() ? Missing : It->second;
  }
};

class MiniJson {
public:
  explicit MiniJson(const std::string &Text) : S(Text) {}

  bool parse(JsonValue &Out) {
    skipWs();
    return value(Out) && (skipWs(), P == S.size());
  }

private:
  const std::string &S;
  size_t P = 0;

  void skipWs() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool consume(char C) {
    skipWs();
    if (P < S.size() && S[P] == C) {
      ++P;
      return true;
    }
    return false;
  }
  bool string(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (P < S.size() && S[P] != '"') {
      char C = S[P++];
      if (C == '\\' && P < S.size()) {
        char E = S[P++];
        switch (E) {
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        default: Out += E; break; // good enough for our emitter
        }
      } else {
        Out += C;
      }
    }
    return P < S.size() && S[P++] == '"';
  }
  bool value(JsonValue &Out) {
    skipWs();
    if (P >= S.size())
      return false;
    char C = S[P];
    if (C == '{') {
      ++P;
      Out.T = JsonValue::Obj;
      skipWs();
      if (consume('}'))
        return true;
      do {
        std::string Key;
        if (!string(Key) || !consume(':'))
          return false;
        JsonValue V;
        if (!value(V))
          return false;
        Out.O.emplace(std::move(Key), std::move(V));
      } while (consume(','));
      return consume('}');
    }
    if (C == '[') {
      ++P;
      Out.T = JsonValue::Arr;
      skipWs();
      if (consume(']'))
        return true;
      do {
        JsonValue V;
        if (!value(V))
          return false;
        Out.A.push_back(std::move(V));
      } while (consume(','));
      return consume(']');
    }
    if (C == '"') {
      Out.T = JsonValue::Str;
      return string(Out.S);
    }
    if (S.compare(P, 4, "true") == 0) {
      Out.T = JsonValue::Bool;
      Out.B = true;
      P += 4;
      return true;
    }
    if (S.compare(P, 5, "false") == 0) {
      Out.T = JsonValue::Bool;
      Out.B = false;
      P += 5;
      return true;
    }
    if (S.compare(P, 4, "null") == 0) {
      Out.T = JsonValue::Null;
      P += 4;
      return true;
    }
    size_t End = P;
    while (End < S.size() &&
           (std::isdigit(static_cast<unsigned char>(S[End])) || S[End] == '-' ||
            S[End] == '+' || S[End] == '.' || S[End] == 'e' || S[End] == 'E'))
      ++End;
    if (End == P)
      return false;
    Out.T = JsonValue::Num;
    Out.N = std::stod(S.substr(P, End - P));
    P = End;
    return true;
  }
};

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Returns true when trace action \p I can be the witness side described by
/// (Thr, IsWrite, Xact) for a race on \p V.
bool sideMatches(const Trace &T, size_t I, VarId V, ThreadId Thr, bool IsWrite,
                 bool Xact) {
  const Action &A = T.Actions[I];
  if (A.Thread != Thr || !T.accesses(I, V))
    return false;
  if (Xact) {
    // A txn witness side names the commit set the engine's check fired on:
    // the write set when IsWrite, otherwise the read set. A commit that
    // both reads and writes V may legitimately be reported as either.
    if (A.Kind != ActionKind::Commit)
      return false;
    const CommitSets &CS = T.commitSets(A);
    if (IsWrite)
      return CS.writes(V);
    return std::find(CS.Reads.begin(), CS.Reads.end(), V) != CS.Reads.end();
  }
  return (A.Kind == ActionKind::Write) == IsWrite &&
         (A.Kind == ActionKind::Read || A.Kind == ActionKind::Write);
}

/// Checks the reported witness pair corresponds to SOME concurrent
/// conflicting pair in the trace. The engine may legitimately pair the racy
/// access with a different concurrent prior than the oracle's chosen one
/// (the oracle stops at the first unordered pair per variable; the engine
/// reports whatever prior its Info record holds), so the check is
/// existential: the (thread, kind) pair it names must be realizable by two
/// concurrent accesses of the variable.
void expectWitnessIsConcurrentPair(const Trace &T, const HbAnalysis &Hb,
                                   const RaceReport &R) {
  ASSERT_TRUE(R.IsWrite || R.PriorIsWrite) << "read/read is never a race";
  for (size_t J = 0; J != T.Actions.size(); ++J) {
    if (!sideMatches(T, J, R.Var, R.Thread, R.IsWrite, R.Xact))
      continue;
    for (size_t I = 0; I != T.Actions.size(); ++I)
      if (I != J &&
          sideMatches(T, I, R.Var, R.PriorThread, R.PriorIsWrite,
                      R.PriorXact) &&
          Hb.concurrent(I, J))
        return;
  }
  ADD_FAILURE() << "no concurrent pair in the trace matches the witness: "
                << R.str();
}

/// Checks one engine report against the oracle race derived for the same
/// variable: same threads on both sides, same read/write kinds.
void expectMatchesOracle(const Trace &T, const RaceReport &R,
                         const RaceOracle &Oracle) {
  const OracleRace *Match = nullptr;
  for (const OracleRace &O : Oracle.races())
    if (O.Var == R.Var)
      Match = &O;
  ASSERT_NE(Match, nullptr) << "engine reported a race on " << R.Var.str()
                            << " that the oracle does not derive";
  const Action &Prior = T.Actions[Match->PriorIndex];
  const Action &Access = T.Actions[Match->AccessIndex];
  EXPECT_EQ(R.Thread, Access.Thread) << "current-access thread";
  EXPECT_EQ(R.PriorThread, Prior.Thread) << "prior-access thread";
  if (Access.Kind == ActionKind::Read || Access.Kind == ActionKind::Write)
    EXPECT_EQ(R.IsWrite, Access.Kind == ActionKind::Write);
  else
    EXPECT_TRUE(R.Xact) << "oracle access is a commit; report must be txn";
  if (Prior.Kind == ActionKind::Read || Prior.Kind == ActionKind::Write)
    EXPECT_EQ(R.PriorIsWrite, Prior.Kind == ActionKind::Write);
  else
    EXPECT_TRUE(R.PriorXact) << "oracle prior is a commit; report must be txn";
}

/// Checks the provenance trail is a valid sync-order chain for its report.
void expectValidProvenance(const RaceReport &R) {
  ASSERT_TRUE(R.Provenance) << "provenance capture is on by default";
  const RaceProvenance &P = *R.Provenance;
  EXPECT_FALSE(P.InitialLockset.empty());
  uint64_t PrevSeq = R.PriorSeq;
  for (const ProvenanceStep &S : P.Steps) {
    EXPECT_TRUE(isSyncKind(S.Kind))
        << "walked a non-sync action: " << actionKindName(S.Kind);
    EXPECT_GT(S.Seq, PrevSeq) << "steps must be strictly increasing";
    EXPECT_LE(S.Seq, R.Seq) << "step escaped the window (PriorSeq, Seq]";
    EXPECT_FALSE(S.LocksetAfter.empty());
    EXPECT_FALSE(S.str().empty());
    PrevSeq = S.Seq;
  }
  if (!P.Truncated) {
    EXPECT_LE(P.Steps.size(), size_t(R.Seq - R.PriorSeq));
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Deterministic scenarios
//===----------------------------------------------------------------------===//

// The paper's basic unordered pair: T1 writes under no common lock, T2
// reads. The only sync between them (two unrelated acquires) does not order
// them, and the provenance must show exactly those replayed events.
TEST(RaceReportTest, WitnessAndProvenanceOnBasicUnorderedPair) {
  TraceBuilder B;
  B.alloc(1, 10)
      .write(1, 10, 0) // prior access: T1 write o10.f0
      .acq(1, 2)
      .rel(1, 2)
      .acq(2, 3) // unrelated lock: no ordering edge
      .read(2, 10, 0); // racy access: T2 read o10.f0
  Trace T = B.take();

  RaceOracle Oracle(T);
  ASSERT_EQ(Oracle.races().size(), 1u);

  GoldilocksDetector D;
  auto Races = D.runTrace(T);
  ASSERT_EQ(Races.size(), 1u);
  const RaceReport &R = Races[0];
  EXPECT_EQ(R.Var, (VarId{10, 0}));
  EXPECT_EQ(R.Thread, 2u);
  EXPECT_EQ(R.PriorThread, 1u);
  EXPECT_FALSE(R.IsWrite);
  EXPECT_TRUE(R.PriorIsWrite);
  expectMatchesOracle(T, R, Oracle);

  expectValidProvenance(R);
  const RaceProvenance &P = *R.Provenance;
  // The walked window contains the three sync events between the accesses.
  ASSERT_EQ(P.Steps.size(), 3u);
  EXPECT_EQ(P.Steps[0].Kind, ActionKind::Acquire);
  EXPECT_EQ(P.Steps[1].Kind, ActionKind::Release);
  EXPECT_EQ(P.Steps[2].Kind, ActionKind::Acquire);
  EXPECT_EQ(P.Steps[2].Thread, 2u);

  // Human renderings carry the window and the evolution.
  std::string V = R.strVerbose();
  EXPECT_NE(V.find("sync window"), std::string::npos) << V;
  EXPECT_NE(V.find("lockset at prior access"), std::string::npos) << V;
  EXPECT_NE(V.find("acq"), std::string::npos) << V;
}

// A properly lock-protected handoff must not race; and after a release->
// acquire chain transfers ownership, the provenance of a *later* race on a
// different variable must still replay a well-formed window.
TEST(RaceReportTest, LockProtectedPairDoesNotRace) {
  TraceBuilder B;
  B.alloc(1, 10)
      .acq(1, 2)
      .write(1, 10, 0)
      .rel(1, 2)
      .acq(2, 2)
      .read(2, 10, 0)
      .rel(2, 2);
  Trace T = B.take();
  RaceOracle Oracle(T);
  EXPECT_TRUE(Oracle.races().empty());
  GoldilocksDetector D;
  EXPECT_TRUE(D.runTrace(T).empty());
}

// Empty window: the two conflicting accesses have no sync event between
// their anchors at all. The provenance must say so (no steps) rather than
// inventing a chain.
TEST(RaceReportTest, EmptyWindowYieldsEmptyProvenanceSteps) {
  TraceBuilder B;
  B.alloc(1, 10).write(1, 10, 0).write(2, 10, 0);
  Trace T = B.take();
  GoldilocksDetector D;
  auto Races = D.runTrace(T);
  ASSERT_EQ(Races.size(), 1u);
  expectValidProvenance(Races[0]);
  EXPECT_TRUE(Races[0].Provenance->Steps.empty());
  EXPECT_EQ(Races[0].Seq, Races[0].PriorSeq)
      << "no sync events between the anchors";
}

// Provenance can be turned off; the verdict must be unchanged and the
// report must simply carry no trail.
TEST(RaceReportTest, DisablingProvenanceKeepsTheVerdict) {
  TraceBuilder B;
  B.alloc(1, 10).write(1, 10, 0).acq(1, 2).rel(1, 2).read(2, 10, 0);
  Trace T = B.take();
  EngineConfig C;
  C.EnableProvenance = false;
  GoldilocksDetector D(C);
  auto Races = D.runTrace(T);
  ASSERT_EQ(Races.size(), 1u);
  EXPECT_FALSE(Races[0].Provenance);
  EXPECT_EQ(Races[0].str(), Races[0].strVerbose().substr(0, Races[0].str().size()));
}

// MaxProvenanceSteps caps the replay record (not the verdict): a long
// window must yield a truncated trail.
TEST(RaceReportTest, LongWindowTruncatesTheTrailNotTheVerdict) {
  TraceBuilder B;
  B.alloc(1, 10).write(1, 10, 0);
  for (int I = 0; I != 32; ++I)
    B.acq(1, 2).rel(1, 2);
  B.read(2, 10, 0);
  Trace T = B.take();
  EngineConfig C;
  C.MaxProvenanceSteps = 8;
  GoldilocksDetector D(C);
  auto Races = D.runTrace(T);
  ASSERT_EQ(Races.size(), 1u);
  ASSERT_TRUE(Races[0].Provenance);
  EXPECT_TRUE(Races[0].Provenance->Truncated);
  EXPECT_EQ(Races[0].Provenance->Steps.size(), 8u);
  expectValidProvenance(Races[0]);
}

//===----------------------------------------------------------------------===//
// Random sweep vs the oracle
//===----------------------------------------------------------------------===//

TEST(RaceReportTest, RandomSweepWitnessesMatchOracleAndProvenanceIsValid) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    RandomTraceParams P;
    P.Seed = Seed;
    P.NumThreads = 2 + static_cast<ThreadId>(Seed % 4);
    P.StepsPerThread = 30 + static_cast<unsigned>(Seed % 40);
    Trace T = generateRandomTrace(P);
    RaceOracle Oracle(T);
    HbAnalysis Hb(T);
    std::set<VarId> RacyVars;
    for (VarId V : Oracle.racyVars())
      RacyVars.insert(V);
    GoldilocksDetector D;
    for (const RaceReport &R : D.runTrace(T)) {
      SCOPED_TRACE("seed " + std::to_string(Seed) + " var " + R.Var.str());
      EXPECT_TRUE(RacyVars.count(R.Var))
          << "engine race on a variable the oracle says is race-free";
      expectWitnessIsConcurrentPair(T, Hb, R);
      expectValidProvenance(R);
    }
  }
}

//===----------------------------------------------------------------------===//
// JSON round-trip
//===----------------------------------------------------------------------===//

TEST(RaceReportTest, JsonRoundTripsEveryField) {
  TraceBuilder B;
  B.alloc(1, 10)
      .write(1, 10, 0)
      .acq(1, 2)
      .rel(1, 2)
      .fork(1, 3)
      .read(2, 10, 0);
  Trace T = B.take();
  GoldilocksDetector D;
  auto Races = D.runTrace(T);
  ASSERT_EQ(Races.size(), 1u);
  const RaceReport &R = Races[0];
  ASSERT_TRUE(R.Provenance);

  JsonWriter W;
  R.toJson(W);
  JsonValue Doc;
  ASSERT_TRUE(MiniJson(W.str()).parse(Doc)) << W.str();

  EXPECT_EQ(Doc.at("var").S, R.Var.str());
  const JsonValue &Access = Doc.at("access");
  EXPECT_EQ(Access.at("thread").N, double(R.Thread));
  EXPECT_EQ(Access.at("kind").S, R.IsWrite ? "write" : "read");
  EXPECT_EQ(Access.at("txn").B, R.Xact);
  EXPECT_EQ(Access.at("seq").N, double(R.Seq));
  const JsonValue &Prior = Doc.at("prior");
  EXPECT_EQ(Prior.at("thread").N, double(R.PriorThread));
  EXPECT_EQ(Prior.at("kind").S, R.PriorIsWrite ? "write" : "read");
  EXPECT_EQ(Prior.at("seq").N, double(R.PriorSeq));

  const JsonValue &Prov = Doc.at("provenance");
  EXPECT_TRUE(Prov.at("captured").B);
  EXPECT_EQ(Prov.at("initial_lockset").S, R.Provenance->InitialLockset);
  EXPECT_EQ(Prov.at("truncated").B, R.Provenance->Truncated);
  const JsonValue &Steps = Prov.at("steps");
  ASSERT_EQ(Steps.A.size(), R.Provenance->Steps.size());
  for (size_t I = 0; I != Steps.A.size(); ++I) {
    const ProvenanceStep &S = R.Provenance->Steps[I];
    const JsonValue &J = Steps.A[I];
    EXPECT_EQ(J.at("seq").N, double(S.Seq));
    EXPECT_EQ(J.at("kind").S, actionKindName(S.Kind));
    EXPECT_EQ(J.at("thread").N, double(S.Thread));
    EXPECT_EQ(J.at("changed").B, S.Changed);
    EXPECT_EQ(J.at("lockset_after").S, S.LocksetAfter);
    if (S.Target != NoThread)
      EXPECT_EQ(J.at("target").N, double(S.Target));
    else
      EXPECT_EQ(J.at("target").T, JsonValue::Null);
  }
  // The fork step must have round-tripped its target.
  bool SawFork = false;
  for (size_t I = 0; I != Steps.A.size(); ++I)
    if (Steps.A[I].at("kind").S == "fork") {
      SawFork = true;
      EXPECT_EQ(Steps.A[I].at("target").N, 3.0);
    }
  EXPECT_TRUE(SawFork);
}

// A report without provenance must still produce a well-formed document.
TEST(RaceReportTest, JsonWithoutProvenance) {
  RaceReport R;
  R.Var = VarId{4, 1};
  R.Thread = 2;
  R.PriorThread = 1;
  R.IsWrite = true;
  JsonWriter W;
  R.toJson(W);
  JsonValue Doc;
  ASSERT_TRUE(MiniJson(W.str()).parse(Doc)) << W.str();
  EXPECT_FALSE(Doc.at("provenance").at("captured").B);
  EXPECT_EQ(Doc.at("access").at("kind").S, "write");
}
