//===- tests/NetTest.cpp - socket transport tests -------------------------===//
///
/// Covers the fault-tolerant socket front end end to end: incremental LF
/// framing (fragmented reads, CRLF vs interior CR, oversize rejection in
/// stream order — through the framer alone and through a real socket under
/// the net-partial-read failpoint), the sequenced wire protocol (resync,
/// dup suppression, jittered backpressure replies inside the shared backoff
/// envelope), deadlines and heartbeats on a manual clock, bounded write
/// queues with counted shed, accept-shed at the connection cap, crash-only
/// drain that settles kernel-buffered frames with zero loss, live /healthz
/// and /metrics scraping while ingestion is backpressured, and the
/// eight-client loopback chaos soak (all four net failpoints + forced
/// reconnect-with-resume) differentially validated against the
/// happens-before oracle.
///
//===----------------------------------------------------------------------===//

#include "event/RandomTrace.h"
#include "event/TraceIO.h"
#include "hb/HbOracle.h"
#include "service/Backoff.h"
#include "service/Service.h"
#include "service/Snapshots.h"
#include "service/Tracing.h"
#include "service/net/Framer.h"
#include "service/net/NetServer.h"
#include "support/Failpoints.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

using namespace gold;
using namespace gold::net;

namespace {

std::vector<std::string> traceLines(const Trace &T) {
  std::vector<std::string> Lines;
  std::istringstream In(serializeTrace(T));
  std::string L;
  while (std::getline(In, L))
    if (!L.empty())
      Lines.push_back(L);
  return Lines;
}

Trace smallRandomTrace(uint64_t Seed, unsigned Steps = 30,
                       unsigned Threads = 4) {
  RandomTraceParams P;
  P.Seed = Seed;
  P.StepsPerThread = Steps;
  P.NumThreads = Threads;
  return generateRandomTrace(P);
}

std::set<std::string> oracleVarStrings(const Trace &T) {
  std::set<std::string> Want;
  RaceOracle O(T, TxnSyncSemantics::SharedVariable);
  for (const VarId &V : O.racyVars())
    Want.insert(V.str());
  return Want;
}

/// Pulls the variable token out of "race on o3.f1: T1 write vs T0 write".
bool raceVarOf(const std::string &Report, std::string &Var) {
  const std::string Tag = "race on ";
  size_t B = Report.find(Tag);
  if (B == std::string::npos)
    return false;
  B += Tag.size();
  size_t E = Report.find(':', B);
  if (E == std::string::npos)
    return false;
  Var.assign(Report, B, E - B);
  return true;
}

/// Minimal blocking test client. Deterministic single-threaded tests pass a
/// Pump callback that runs the server's poll loop between reads; threaded
/// tests pass an empty one.
struct TClient {
  int Fd = -1;
  std::string Rx;

  ~TClient() { closeFd(); }

  bool connectTo(uint16_t Port) {
    closeFd();
    Rx.clear();
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return false;
    sockaddr_in A;
    std::memset(&A, 0, sizeof(A));
    A.sin_family = AF_INET;
    A.sin_port = htons(Port);
    ::inet_pton(AF_INET, "127.0.0.1", &A.sin_addr);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&A), sizeof(A)) != 0) {
      closeFd();
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    return true;
  }

  bool sendRaw(const std::string &Data) {
    size_t Off = 0;
    while (Off < Data.size()) {
      ssize_t W =
          ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  /// Reads one reply line, pumping the server between short waits.
  /// Returns false when no line arrives within \p Rounds pump rounds.
  bool readLine(std::string &Out, const std::function<void()> &Pump,
                int Rounds = 3000) {
    for (int R = 0; R != Rounds; ++R) {
      size_t P = Rx.find('\n');
      if (P != std::string::npos) {
        Out.assign(Rx, 0, P);
        Rx.erase(0, P + 1);
        return true;
      }
      if (Pump)
        Pump();
      pollfd PF{Fd, POLLIN, 0};
      int N = ::poll(&PF, 1, Pump ? 0 : 5);
      if (N > 0) {
        char B[2048];
        ssize_t Got = ::recv(Fd, B, sizeof(B), 0);
        if (Got > 0)
          Rx.append(B, static_cast<size_t>(Got));
        else if (Got == 0)
          return false; // EOF with no complete line
      }
    }
    return false;
  }

  /// Reads until the server closes the connection (scrape responses).
  std::string readAll(const std::function<void()> &Pump, int Rounds = 3000) {
    for (int R = 0; R != Rounds; ++R) {
      if (Pump)
        Pump();
      pollfd PF{Fd, POLLIN, 0};
      int N = ::poll(&PF, 1, Pump ? 0 : 5);
      if (N > 0) {
        char B[4096];
        ssize_t Got = ::recv(Fd, B, sizeof(B), 0);
        if (Got > 0) {
          Rx.append(B, static_cast<size_t>(Got));
          continue;
        }
        if (Got == 0)
          break; // orderly close: response complete
      }
    }
    return Rx;
  }

  void closeFd() {
    if (Fd >= 0)
      ::close(Fd);
    Fd = -1;
  }
};

/// Deterministic single-threaded fixture: service pumped inline by the
/// server, optional manual clock, ephemeral ports.
struct NetFixture {
  std::shared_ptr<std::atomic<uint64_t>> Clock;
  std::unique_ptr<DetectionService> Svc;
  std::unique_ptr<NetServer> Net;

  void init(NetConfig NC, ServiceConfig SC = ServiceConfig(),
            bool ManualClock = false) {
    if (ManualClock) {
      Clock = std::make_shared<std::atomic<uint64_t>>(1000);
      auto C = Clock;
      SC.NowNanos = [C] { return C->load(std::memory_order_relaxed); };
    }
    Svc = std::make_unique<DetectionService>(SC);
    NC.Port = 0;
    if (NC.Scrape)
      NC.ScrapePort = 0;
    Net = std::make_unique<NetServer>(*Svc, NC);
    std::string Err;
    ASSERT_TRUE(Net->start(Err)) << Err;
  }

  std::function<void()> pump() {
    NetServer *N = Net.get();
    return [N] { N->pollOnce(0); };
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// LineFramer
//===----------------------------------------------------------------------===//

TEST(FramerTest, ReassemblesByteAtATimeAndStripsOnlyTrailingCr) {
  LineFramer F(64);
  const std::string Stream = "alpha\r\nbeta\rgamma\ndelta\n";
  for (char Ch : Stream)
    F.feed(&Ch, 1); // worst-case fragmentation: one byte per read
  std::string L;
  ASSERT_EQ(F.next(L), LineFramer::Frame::Line);
  EXPECT_EQ(L, "alpha"); // CRLF ending: one trailing CR stripped
  ASSERT_EQ(F.next(L), LineFramer::Frame::Line);
  EXPECT_EQ(L, "beta\rgamma"); // interior CR preserved for the parser
  ASSERT_EQ(F.next(L), LineFramer::Frame::Line);
  EXPECT_EQ(L, "delta");
  EXPECT_EQ(F.next(L), LineFramer::Frame::None);
  EXPECT_FALSE(F.hasPartial());
}

TEST(FramerTest, OversizeReportedOnceInStreamOrderAndBounded) {
  LineFramer F(8);
  std::string Big(100, 'x');
  std::string Stream = "ok1\n" + Big + "\nok2\n";
  // Feed in ragged chunks so the oversize frame spans many reads.
  for (size_t I = 0; I < Stream.size(); I += 3)
    F.feed(Stream.data() + I, std::min<size_t>(3, Stream.size() - I));
  std::string L;
  ASSERT_EQ(F.next(L), LineFramer::Frame::Line);
  EXPECT_EQ(L, "ok1");
  ASSERT_EQ(F.next(L), LineFramer::Frame::Oversize); // exactly where it sat
  ASSERT_EQ(F.next(L), LineFramer::Frame::Line);
  EXPECT_EQ(L, "ok2");
  EXPECT_EQ(F.next(L), LineFramer::Frame::None);
  // The buffer never holds more than MaxFrameBytes of the abusive line.
  std::string Tail(1000, 'y'); // unterminated oversize tail
  F.feed(Tail.data(), Tail.size());
  EXPECT_LE(F.pendingBytes(), 8u);
  EXPECT_TRUE(F.hasPartial()); // discarding state counts as partial
}

//===----------------------------------------------------------------------===//
// Wire protocol over real sockets (deterministic, inline pump)
//===----------------------------------------------------------------------===//

TEST(NetServerTest, OpenStreamCloseMatchesOracleOverSocket) {
  NetFixture FX;
  FX.init(NetConfig());
  Trace T = smallRandomTrace(77);
  std::vector<std::string> Lines = traceLines(T);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  EXPECT_EQ(L, "ok open 1");

  char Head[48];
  for (size_t I = 0; I != Lines.size(); ++I) {
    std::snprintf(Head, sizeof(Head), "line 1 %zu ", I);
    ASSERT_TRUE(C.sendRaw(Head + Lines[I] + "\n"));
    FX.Net->pollOnce(0);
  }
  ASSERT_TRUE(C.sendRaw("close 1\n"));

  std::set<std::string> Got;
  for (;;) {
    ASSERT_TRUE(C.readLine(L, FX.pump()));
    if (L.rfind("ok close 1", 0) == 0)
      break;
    std::string Var;
    if (L.rfind("race 1 ", 0) == 0 && raceVarOf(L, Var))
      Got.insert(Var);
  }
  EXPECT_EQ(Got, oracleVarStrings(T));
  EXPECT_EQ(FX.Net->stats().FramesIn, Lines.size() + 2);
  EXPECT_EQ(FX.Svc->health().ParseErrors, 0u);
}

TEST(NetServerTest, SeqGapResyncsAndDupsAreSuppressed) {
  NetFixture FX;
  FX.init(NetConfig());
  std::vector<std::string> Lines = traceLines(smallRandomTrace(5));
  ASSERT_GE(Lines.size(), 3u);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_EQ(L, "ok open 1");

  // Jump ahead: seq 4 while the server expects 0 → resync reply, and the
  // frame is dropped BEFORE feedLine (nothing is silently consumed).
  ASSERT_TRUE(C.sendRaw("line 1 4 " + Lines[0] + "\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  EXPECT_EQ(L, "err line 1 seq=4 resync expect=0");

  // In order: consumed silently.
  ASSERT_TRUE(C.sendRaw("line 1 0 " + Lines[0] + "\n"));
  ASSERT_TRUE(C.sendRaw("line 1 1 " + Lines[1] + "\n"));
  // Retransmit of seq 0 (post-reconnect replay): ignored, not re-fed.
  ASSERT_TRUE(C.sendRaw("line 1 0 " + Lines[0] + "\n"));
  ASSERT_TRUE(C.sendRaw("stat 1\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  EXPECT_NE(L.find("expect=2"), std::string::npos) << L;
  EXPECT_NE(L.find("accepted=2"), std::string::npos) << L;

  NetStats S = FX.Net->stats();
  EXPECT_EQ(S.ResyncReplies, 1u);
  EXPECT_EQ(S.DupFrames, 1u);
}

// Satellite: the full malformed-input matrix through a REAL socket with
// every read fragmented to one byte by the net-partial-read failpoint —
// oversize frames, interior CR (control-byte rejection, stdio-identical),
// CRLF endings, all interleaved with valid sequenced lines.
TEST(NetServerTest, FramerRejectionsThroughSocketWithFragmentedReads) {
  FailpointConfig FC;
  FC.Seed = 9;
  FC.rate(Failpoint::NetPartialRead, 1000000); // every read: one byte
  FailpointScope Scope(FC);

  NetConfig NC;
  NC.MaxFrameBytes = 64;
  NetFixture FX;
  FX.init(NC);
  std::vector<std::string> Lines = traceLines(smallRandomTrace(5));
  ASSERT_LT(Lines[0].size() + 10, 64u);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump(), 20000));
  ASSERT_EQ(L, "ok open 1");

  // Oversize: the whole frame (seq included) is discarded byte by byte;
  // the server's memory stays bounded and expect does not move.
  ASSERT_TRUE(C.sendRaw("line 1 0 " + std::string(200, 'x') + "\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump(), 20000));
  EXPECT_EQ(L, "err proto oversize frame dropped");

  // Interior CR: framed intact, then rejected by the trace parser exactly
  // as the stdio path rejects it. Rejection consumes the seq.
  ASSERT_TRUE(C.sendRaw("line 1 0 bad\rline\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump(), 20000));
  EXPECT_EQ(L.rfind("err line 1 ", 0), 0u) << L;
  EXPECT_EQ(L.find("resync"), std::string::npos) << L;

  // CRLF ending: stripped, accepted silently.
  ASSERT_TRUE(C.sendRaw("line 1 1 " + Lines[0] + "\r\n"));
  ASSERT_TRUE(C.sendRaw("stat 1\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump(), 20000));
  EXPECT_NE(L.find("expect=2"), std::string::npos) << L;
  EXPECT_NE(L.find("accepted=1"), std::string::npos) << L;

  NetStats S = FX.Net->stats();
  EXPECT_EQ(S.OversizeFrames, 1u);
  EXPECT_GE(S.ProtocolErrors, 2u); // oversize + rejected line
  EXPECT_GT(Failpoints::instance().fires(Failpoint::NetPartialRead), 0u);
}

TEST(NetServerTest, BackpressureReplyCarriesSharedJitteredSchedule) {
  // Tiny queued-byte budget, no pumping: once the budget fills the next
  // line cannot be admitted, so the wire must refuse it with the shared
  // backoff schedule.
  ServiceConfig SC;
  SC.Shards = 1;
  SC.RingCapacity = 8;
  SC.MaxQueuedBytes = 256;
  NetConfig NC;
  NC.InlinePump = false;
  NC.Scrape = true;
  NetFixture FX;
  FX.init(NC, SC);
  std::vector<std::string> Lines = traceLines(smallRandomTrace(5));

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_EQ(L, "ok open 1");

  // Stream until the one-slot ring refuses a line. Early trace lines are
  // declarations that enqueue nothing, so the refusal point is discovered,
  // not assumed.
  uint64_t Ns = 0;
  size_t Refused = SIZE_MAX;
  char Head[48];
  for (size_t I = 0; I != Lines.size() && Refused == SIZE_MAX; ++I) {
    std::snprintf(Head, sizeof(Head), "line 1 %zu ", I);
    ASSERT_TRUE(C.sendRaw(Head + Lines[I] + "\n"));
    FX.Net->pollOnce(0);
    while (Refused == SIZE_MAX && C.readLine(L, FX.pump(), 5)) {
      size_t At = L.find(" backpressure retry-after-ns=");
      if (L.rfind("err line 1 seq=", 0) == 0 && At != std::string::npos) {
        Refused = std::strtoull(L.c_str() + 15, nullptr, 10);
        Ns = std::strtoull(L.c_str() + At + 29, nullptr, 10);
      }
    }
  }
  ASSERT_NE(Refused, SIZE_MAX) << "one-slot ring never backpressured";
  ASSERT_GT(Ns, 0u);
  // Every surface derives its hint from backoffNanos, so the reply must sit
  // inside the envelope of SOME attempt of the shared schedule.
  uint64_t Lo0, Hi0, LoMax, HiMax;
  backoffBoundsNanos(SC.BackoffBaseNanos, 0, SC.BackoffMaxNanos, Lo0, Hi0);
  backoffBoundsNanos(SC.BackoffBaseNanos, 16, SC.BackoffMaxNanos, LoMax,
                     HiMax);
  EXPECT_GE(Ns, Lo0);
  EXPECT_LE(Ns, HiMax);
  EXPECT_GE(FX.Net->stats().BackpressureReplies, 1u);

  // Acceptance: /metrics is served live WHILE ingestion is backpressured.
  TClient Scrape;
  ASSERT_TRUE(Scrape.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(Scrape.sendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string Resp = Scrape.readAll(FX.pump());
  EXPECT_NE(Resp.find("200 OK"), std::string::npos);
  EXPECT_NE(Resp.find("gold-metrics-v1"), std::string::npos);
  EXPECT_NE(Resp.find("net.backpressure_replies"), std::string::npos);
  EXPECT_NE(Resp.find("service.backpressure_rejects"), std::string::npos);

  // The refused line was NOT buffered server-side: after the service is
  // pumped, honoring the hint and re-sending the SAME line succeeds.
  FX.Svc->pumpAll();
  FX.Svc->poll();
  std::snprintf(Head, sizeof(Head), "line 1 %zu ", Refused);
  ASSERT_TRUE(C.sendRaw(Head + Lines[Refused] + "\n"));
  ASSERT_TRUE(C.sendRaw("stat 1\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  char Want[32];
  std::snprintf(Want, sizeof(Want), "expect=%zu", Refused + 1);
  EXPECT_NE(L.find(Want), std::string::npos) << L;
}

TEST(NetServerTest, ScrapeServesHealthAndRejectsUnknownPaths) {
  NetConfig NC;
  NC.Scrape = true;
  NetFixture FX;
  FX.init(NC);

  TClient H;
  ASSERT_TRUE(H.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(H.sendRaw("GET /healthz HTTP/1.0\r\n\r\n"));
  std::string Resp = H.readAll(FX.pump());
  EXPECT_NE(Resp.find("200 OK"), std::string::npos);
  EXPECT_NE(Resp.find("gold-health-v1"), std::string::npos);
  EXPECT_NE(Resp.find("\"net\""), std::string::npos); // wire section present
  EXPECT_NE(Resp.find("closed_by"), std::string::npos);

  TClient Bad;
  ASSERT_TRUE(Bad.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(Bad.sendRaw("GET /nope HTTP/1.0\r\n\r\n"));
  EXPECT_NE(Bad.readAll(FX.pump()).find("404"), std::string::npos);

  TClient Put;
  ASSERT_TRUE(Put.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(Put.sendRaw("PUT /metrics HTTP/1.0\r\n\r\n"));
  EXPECT_NE(Put.readAll(FX.pump()).find("405"), std::string::npos);

  EXPECT_EQ(FX.Net->stats().ScrapeRequests, 3u);
}

TEST(NetServerTest, ScrapeStreamsBodiesLargerThanTheWriteQueue) {
  // Regression: a /metrics document bigger than the bounded write queue
  // must arrive complete. The response is streamed in WriteQueueCapBytes
  // chunks, and the NetWriteStall failpoint forces the partial-progress
  // path (flushes skipped mid-body) that used to truncate the reply.
  FailpointConfig FC;
  FC.Seed = 11;
  FC.rate(Failpoint::NetWriteStall, 200000); // skip 20% of flushes
  FailpointScope Scope(FC);

  ServiceConfig SC;
  SC.Telemetry = TelemetryLevel::Full;
  SC.Trace.Enabled = true; // registers the pipe.* histograms: bigger doc
  SC.Trace.SampleRatePpm = 1000000;
  NetConfig NC;
  NC.Scrape = true;
  NC.WriteQueueCapBytes = 512; // far smaller than the document
  NetFixture FX;
  FX.init(NC, SC);

  // Populate the histograms directly so the document carries real buckets.
  DetectionService::OpenResult O = FX.Svc->open(1);
  ASSERT_NE(O.S, nullptr) << O.Error;
  std::vector<std::string> Lines = traceLines(smallRandomTrace(40));
  for (size_t I = 0; I != Lines.size(); ++I) {
    FrameTrace FT;
    FT.OriginNanos = 1;
    FT.FrameSeq = I;
    FT.Span = true;
    FeedResult R;
    do {
      R = O.S->feedLine(Lines[I], &FT);
      if (R.St == FeedResult::Status::Backpressure)
        FX.Svc->pumpAll();
    } while (R.St == FeedResult::Status::Backpressure);
    ASSERT_EQ(R.St, FeedResult::Status::Accepted) << R.Error;
  }
  FX.Svc->pumpAll();
  FX.Svc->poll();

  TClient M;
  ASSERT_TRUE(M.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(M.sendRaw("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string Resp = M.readAll(FX.pump(), 20000);
  ASSERT_NE(Resp.find("200 OK"), std::string::npos);
  size_t ClAt = Resp.find("Content-Length: ");
  ASSERT_NE(ClAt, std::string::npos);
  size_t ContentLength = std::strtoull(Resp.c_str() + ClAt + 16, nullptr, 10);
  size_t HdrEnd = Resp.find("\r\n\r\n");
  ASSERT_NE(HdrEnd, std::string::npos);
  std::string Body = Resp.substr(HdrEnd + 4);
  // The whole point: the advertised length survives stalls and chunking.
  EXPECT_EQ(Body.size(), ContentLength);
  ASSERT_GT(Body.size(), NC.WriteQueueCapBytes)
      << "document no longer exercises the streaming path";
  EXPECT_EQ(Body.front(), '{');
  EXPECT_NE(Body.find("gold-metrics-v1"), std::string::npos);
  EXPECT_NE(Body.find("pipe.wire"), std::string::npos);
}

TEST(NetServerTest, HistoryEndpointServesTheRingAndUnboundIs404) {
  NetConfig NC;
  NC.Scrape = true;
  NetFixture FX;
  FX.init(NC);

  // No producer bound: the endpoint exists but reports itself disabled.
  TClient Off;
  ASSERT_TRUE(Off.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(Off.sendRaw("GET /metrics/history HTTP/1.0\r\n\r\n"));
  EXPECT_NE(Off.readAll(FX.pump()).find("404"), std::string::npos);

  // One producer feeds both --metrics-interval-ms snapshots and this ring;
  // binding it turns the endpoint on with whatever the ring holds.
  SnapshotProducer::Config PC;
  PC.HistoryCapacity = 8;
  SnapshotProducer P(PC, [&] { return FX.Net->metricsSnapshot(); });
  P.sample(1000000000ull); // primes the baseline
  P.sample(3000000000ull); // first real delta sample
  FX.Net->bindHistory(&P);

  TClient On;
  ASSERT_TRUE(On.connectTo(FX.Net->scrapePort()));
  ASSERT_TRUE(On.sendRaw("GET /metrics/history HTTP/1.0\r\n\r\n"));
  std::string Resp = On.readAll(FX.pump());
  EXPECT_NE(Resp.find("200 OK"), std::string::npos);
  EXPECT_NE(Resp.find("gold-timeseries-v1"), std::string::npos);
  EXPECT_NE(Resp.find("\"dt_secs\":2"), std::string::npos) << Resp;
  EXPECT_NE(Resp.find("\"capacity\":8"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Deadlines, heartbeats, bounded write queues (manual clock)
//===----------------------------------------------------------------------===//

TEST(NetServerTest, OpenClockHandshakeCorrectsOriginStamps) {
  // The wire carries client-monotonic origins; the open handshake measures
  // the offset and every subsequent stamp is corrected into the server's
  // domain before the wire-stage histogram sees it. Manual clock makes the
  // arithmetic exact: server=1000 at open, client says 500 -> offset +500;
  // at admission (server=2000) a frame stamped @600 corrects to 1100, so
  // the wire stage records exactly 900ns.
  ServiceConfig SC;
  SC.Shards = 1;
  SC.Telemetry = TelemetryLevel::Full;
  SC.Trace.Enabled = true;
  SC.Trace.SampleRatePpm = 1000000;
  NetConfig NC;
  NetFixture FX;
  FX.init(NC, SC, /*ManualClock=*/true); // clock starts at 1000

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1 1 t=500\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_EQ(L.rfind("ok open 1", 0), 0u) << L;

  FX.Clock->store(2000, std::memory_order_relaxed);
  ASSERT_TRUE(C.sendRaw("line 1 0 @600 fork 0 1\n"));
  ASSERT_TRUE(C.sendRaw("stat 1\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_NE(L.find("expect=1"), std::string::npos) << L;
  FX.Svc->pumpAll();
  FX.Svc->poll();

  TelemetrySnapshot Snap = FX.Svc->telemetry();
  const HistogramSnapshot *Wire = nullptr;
  for (const auto &HS : Snap.Histograms)
    if (HS.Name == "pipe.wire")
      Wire = &HS;
  ASSERT_NE(Wire, nullptr);
  EXPECT_EQ(Wire->Count, 1u);
  EXPECT_EQ(Wire->Sum, 900u) << "origin not corrected by the open offset";
  EXPECT_GE(FX.Svc->spanSink()->size(), 1u);
}

TEST(NetServerTest, HeartbeatThenReadDeadlineClosesHalfOpenPeer) {
  NetConfig NC;
  NC.HeartbeatNanos = 100;
  NC.ReadDeadlineNanos = 1000;
  NetFixture FX;
  FX.init(NC, ServiceConfig(), /*ManualClock=*/true);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_EQ(L, "ok open 1");

  // Silence past the heartbeat threshold: the server probes with a ping.
  FX.Clock->store(2000);
  FX.Net->pollOnce(0);
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  EXPECT_EQ(L.rfind("ping ", 0), 0u) << L;
  EXPECT_EQ(FX.Net->stats().HeartbeatsSent, 1u);

  // Still silent past the read deadline: half-open, closed with the reason
  // on the wire. The session stays resumable.
  FX.Clock->store(5000);
  FX.Net->pollOnce(0);
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  EXPECT_EQ(L, "bye read-timeout");
  NetStats S = FX.Net->stats();
  EXPECT_EQ(S.ClosedBy[static_cast<unsigned>(ConnClose::ReadTimeout)], 1u);
  EXPECT_EQ(FX.Net->openConnections(), 0u);

  // Reconnect: the stream resumes exactly where the server left it.
  TClient C2;
  ASSERT_TRUE(C2.connectTo(FX.Net->port()));
  ASSERT_TRUE(C2.sendRaw("open 1\n"));
  ASSERT_TRUE(C2.readLine(L, FX.pump()));
  EXPECT_EQ(L, "ok open 1 resumed expect=0");
  EXPECT_EQ(FX.Net->stats().Resumes, 1u);
}

TEST(NetServerTest, PongAnswersDeferTheReadDeadline) {
  NetConfig NC;
  NC.HeartbeatNanos = 100;
  NC.ReadDeadlineNanos = 1000;
  NetFixture FX;
  FX.init(NC, ServiceConfig(), /*ManualClock=*/true);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));

  for (uint64_t Now = 2000; Now <= 20000; Now += 900) {
    FX.Clock->store(Now);
    FX.Net->pollOnce(0);
    if (C.readLine(L, FX.pump(), 50) && L.rfind("ping", 0) == 0) {
      ASSERT_TRUE(C.sendRaw("pong" + L.substr(4) + "\n"));
      FX.Net->pollOnce(0); // the pong's bytes reset the liveness clock
    }
  }
  // A peer that answers probes is never read-timed-out.
  EXPECT_EQ(FX.Net->stats().ClosedBy[static_cast<unsigned>(
                ConnClose::ReadTimeout)],
            0u);
  EXPECT_GE(FX.Net->stats().HeartbeatsSent, 2u);
  EXPECT_EQ(FX.Net->openConnections(), 1u);
}

TEST(NetServerTest, WriteQueueBoundsShedOnlyNonCriticalReplies) {
  NetConfig NC;
  NC.WriteQueueCapBytes = 96; // short protocol acks fit; health lines do not
  NetFixture FX;
  FX.init(NC);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_EQ(L, "ok open 1");

  // The one-line health render is far larger than the queue: shed, counted,
  // and the connection SURVIVES — bounded memory, not collateral close.
  ASSERT_TRUE(C.sendRaw("health\n"));
  FX.Net->pollOnce(0);
  EXPECT_GE(FX.Net->stats().RepliesShed, 1u);
  ASSERT_TRUE(C.sendRaw("stat 1\n"));
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  EXPECT_EQ(L.rfind("ok stat 1 ", 0), 0u) << L;
  EXPECT_EQ(FX.Net->openConnections(), 1u);
  EXPECT_EQ(FX.Net->stats().ClosedBy[static_cast<unsigned>(
                ConnClose::WriteOverflow)],
            0u);
}

TEST(NetServerTest, AcceptShedAtMaxConnectionsTellsTheClientWhy) {
  NetConfig NC;
  NC.MaxConnections = 1;
  NetFixture FX;
  FX.init(NC);

  TClient First;
  ASSERT_TRUE(First.connectTo(FX.Net->port()));
  ASSERT_TRUE(First.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(First.readLine(L, FX.pump()));
  ASSERT_EQ(L, "ok open 1");

  TClient Second;
  ASSERT_TRUE(Second.connectTo(FX.Net->port()));
  ASSERT_TRUE(Second.readLine(L, FX.pump()));
  EXPECT_EQ(L, "bye accept-shed"); // told to back off, not silently reset
  NetStats S = FX.Net->stats();
  EXPECT_EQ(S.ConnsRejected, 1u);
  EXPECT_EQ(S.ClosedBy[static_cast<unsigned>(ConnClose::AcceptShed)], 1u);
  EXPECT_EQ(FX.Net->openConnections(), 1u);
}

//===----------------------------------------------------------------------===//
// Crash-only drain
//===----------------------------------------------------------------------===//

TEST(NetServerTest, DrainSettlesKernelBufferedFramesWithCountedPartials) {
  NetFixture FX;
  FX.init(NetConfig());
  Trace T = smallRandomTrace(21);
  std::vector<std::string> Lines = traceLines(T);

  TClient C;
  ASSERT_TRUE(C.connectTo(FX.Net->port()));
  ASSERT_TRUE(C.sendRaw("open 1\n"));
  std::string L;
  ASSERT_TRUE(C.readLine(L, FX.pump()));
  ASSERT_EQ(L, "ok open 1");

  // Everything below sits in the kernel receive buffer: the server never
  // polls again before the drain, exactly the SIGTERM-arrives-mid-burst
  // shape. The final fragment has no LF — a partial frame drain must count.
  std::string Burst;
  char Head[48];
  for (size_t I = 0; I != Lines.size(); ++I) {
    std::snprintf(Head, sizeof(Head), "line 1 %zu ", I);
    Burst += Head + Lines[I] + "\n";
  }
  Burst += "line 1 999 half-a-fra"; // dangling partial
  ASSERT_TRUE(C.sendRaw(Burst));

  FX.Net->drainAndStop();
  ASSERT_TRUE(C.readLine(L, nullptr));
  EXPECT_EQ(L, "bye server-drain");

  // Zero loss: every complete frame settled into the service; the one
  // partial is counted, never silent.
  ServiceHealth H = FX.Svc->health();
  EXPECT_EQ(H.LinesAccepted, Lines.size());
  EXPECT_EQ(H.ParseErrors, 0u);
  NetStats S = FX.Net->stats();
  EXPECT_EQ(S.DrainDroppedFrames, 0u);
  EXPECT_EQ(S.PartialFramesDropped, 1u);
  EXPECT_EQ(S.FramesIn, Lines.size() + 1); // + the open frame
  EXPECT_EQ(FX.Net->openConnections(), 0u);
  EXPECT_EQ(FX.Net->pollOnce(0), 0u); // idempotent: drained servers no-op
  FX.Net->drainAndStop();
}

//===----------------------------------------------------------------------===//
// The acceptance soak: 8 clients, all four net failpoints, forced
// reconnect-with-resume, differential vs the happens-before oracle.
//===----------------------------------------------------------------------===//

namespace {

struct SoakResult {
  bool Compared = false;
  bool Failed = false;
  std::string Why;
  size_t Reconnects = 0;
  std::set<std::string> GotVars;
};

/// One adversarial soak client: pipelines sequenced lines, honors
/// backpressure/resync replies, answers pings, reconnects (with replay from
/// the server's resume point) on every disconnect, and forces an abrupt
/// disconnect every \p ReconnectEvery lines.
void soakClient(uint16_t Port, uint64_t Id, const std::vector<std::string> &Ls,
                size_t ReconnectEvery, SoakResult &R) {
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  auto Expired = [&] { return std::chrono::steady_clock::now() > Deadline; };
  TClient W;
  char Buf[64];
  size_t Next = 0, SettledTo = 0, SinceConn = 0;
  uint64_t Rng = Id * 0x9e3779b97f4a7c15ULL + 7;
  auto Rand = [&Rng] {
    Rng ^= Rng << 13;
    Rng ^= Rng >> 7;
    Rng ^= Rng << 17;
    return Rng;
  };

  auto Open = [&]() -> bool {
    while (!Expired()) {
      if (!W.connectTo(Port)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }
      std::snprintf(Buf, sizeof(Buf), "open %llu\n", (unsigned long long)Id);
      std::string L;
      if (!W.sendRaw(Buf) || !W.readLine(L, nullptr, 600))
        continue; // accept-fail chaos: retry
      if (L.rfind("ok open", 0) == 0) {
        size_t E = L.find("expect=");
        if (E != std::string::npos)
          Next = SettledTo = std::strtoull(L.c_str() + E + 7, nullptr, 10);
        SinceConn = 0;
        return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    R.Failed = true;
    R.Why = "open: deadline";
    return false;
  };

  auto Handle = [&](const std::string &L) -> bool {
    if (L.rfind("ping", 0) == 0) {
      W.sendRaw("pong" + L.substr(4) + "\n");
      return true;
    }
    if (L.rfind("bye", 0) == 0)
      return false;
    if (L.rfind("err line", 0) == 0) {
      size_t SeqAt = L.find(" seq=");
      if (L.find(" backpressure ") != std::string::npos &&
          SeqAt != std::string::npos) {
        Next = std::min<size_t>(
            Next, std::strtoull(L.c_str() + SeqAt + 5, nullptr, 10));
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return true;
      }
      size_t EX = L.find("expect=");
      if (L.find(" resync ") != std::string::npos && EX != std::string::npos)
        Next = std::strtoull(L.c_str() + EX + 7, nullptr, 10);
      return true;
    }
    if (L.rfind("ok stat", 0) == 0) {
      size_t EX = L.find("expect=");
      if (EX != std::string::npos)
        SettledTo = std::strtoull(L.c_str() + EX + 7, nullptr, 10);
    }
    return true;
  };

  if (!Open())
    return;
  while (SettledTo < Ls.size()) {
    if (Expired()) {
      R.Failed = true;
      R.Why = "stream: deadline";
      return;
    }
    std::string L;
    bool Alive = true;
    while (Alive && !W.Rx.empty() && W.Rx.find('\n') != std::string::npos &&
           W.readLine(L, nullptr, 1))
      Alive = Handle(L);
    if (Alive) { // also drain anything the kernel holds, nonblocking
      pollfd PF{W.Fd, POLLIN, 0};
      if (::poll(&PF, 1, 0) > 0) {
        char B[2048];
        ssize_t N = ::recv(W.Fd, B, sizeof(B), 0);
        if (N > 0)
          W.Rx.append(B, static_cast<size_t>(N));
        else if (N == 0)
          Alive = false;
      }
    }
    if (!Alive) {
      ++R.Reconnects;
      if (!Open())
        return;
      continue;
    }
    if (ReconnectEvery && SinceConn >= ReconnectEvery) {
      if (Rand() % 2) { // half the time leave a dangling partial frame
        std::snprintf(Buf, sizeof(Buf), "line %llu %llu half",
                      (unsigned long long)Id, (unsigned long long)Next);
        W.sendRaw(Buf);
      }
      W.closeFd();
      ++R.Reconnects;
      if (!Open())
        return;
      continue;
    }
    if (Next < Ls.size()) {
      size_t Batch = std::min<size_t>(Ls.size() - Next, 1 + Rand() % 8);
      std::string Out;
      for (size_t I = 0; I != Batch; ++I) {
        std::snprintf(Buf, sizeof(Buf), "line %llu %llu ",
                      (unsigned long long)Id,
                      (unsigned long long)(Next + I));
        Out += Buf;
        Out += Ls[Next + I];
        Out += '\n';
      }
      if (!W.sendRaw(Out)) { // hang/deadline chaos killed the conn mid-send
        ++R.Reconnects;
        if (!Open())
          return;
        continue;
      }
      Next += Batch;
      SinceConn += Batch;
    } else {
      std::snprintf(Buf, sizeof(Buf), "stat %llu\n", (unsigned long long)Id);
      std::string L2;
      if (!W.sendRaw(Buf) || !W.readLine(L2, nullptr, 600)) {
        ++R.Reconnects;
        if (!Open())
          return;
        continue;
      }
      Handle(L2);
      if (SettledTo < Next)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  // Close and collect verdicts; shed/backpressured replies heal by re-send.
  for (unsigned Try = 0; Try != 400; ++Try) {
    if (Expired())
      break;
    if (W.Fd < 0 && !Open())
      return;
    std::snprintf(Buf, sizeof(Buf), "close %llu\n", (unsigned long long)Id);
    if (!W.sendRaw(Buf)) {
      W.closeFd();
      ++R.Reconnects;
      continue;
    }
    std::string L;
    for (;;) {
      if (!W.readLine(L, nullptr, 600)) {
        W.closeFd();
        ++R.Reconnects;
        break;
      }
      if (L.rfind("ping", 0) == 0) {
        W.sendRaw("pong" + L.substr(4) + "\n");
        continue;
      }
      if (L.rfind("race ", 0) == 0) {
        std::string Var;
        if (raceVarOf(L, Var))
          R.GotVars.insert(Var);
        continue;
      }
      if (L.rfind("ok close", 0) == 0) {
        R.Compared = true;
        return;
      }
      if (L.find("backpressure") != std::string::npos) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        break; // re-send close
      }
      if (L.rfind("bye", 0) == 0) {
        W.closeFd();
        ++R.Reconnects;
        break;
      }
    }
  }
  R.Failed = true;
  R.Why = "close: no ack";
}

} // namespace

TEST(NetSoakTest, EightChaoticClientsSurviveAllNetFailpointsAndMatchOracle) {
  FailpointConfig FC;
  FC.Seed = 31;
  FC.rate(Failpoint::NetAcceptFail, 30000);    // 3% of accepts refused
  FC.rate(Failpoint::NetPartialRead, 100000);  // 10% of reads: one byte
  FC.rate(Failpoint::NetWriteStall, 50000);    // 5% of flushes skipped
  FC.rate(Failpoint::NetConnHang, 300);        // rare half-open latches
  FailpointScope Scope(FC);

  ServiceConfig SC;
  SC.RingCapacity = 64; // small rings: real wire backpressure under load
  NetConfig NC;
  NC.Scrape = true;
  NC.ReadDeadlineNanos = 150ull * 1000000;  // hangs resolve quickly
  NC.HeartbeatNanos = 60ull * 1000000;
  NC.WriteDeadlineNanos = 2000ull * 1000000; // stalls are failpoint-driven
  NetFixture FX;
  FX.init(NC, SC);

  constexpr size_t K = 8;
  std::vector<Trace> Traces;
  std::vector<std::vector<std::string>> AllLines;
  for (size_t I = 0; I != K; ++I) {
    Traces.push_back(smallRandomTrace(400 + I, 25));
    AllLines.push_back(traceLines(Traces.back()));
  }

  std::atomic<bool> Stop{false};
  std::thread Loop([&] { FX.Net->runLoop(Stop, 2); });

  std::vector<SoakResult> Results(K);
  std::vector<std::thread> Clients;
  for (size_t I = 0; I != K; ++I)
    Clients.emplace_back([&, I] {
      soakClient(FX.Net->port(), I + 1, AllLines[I], 20, Results[I]);
    });

  // Mid-soak scrape: the health surface must answer while chaos runs.
  TClient Scrape;
  std::string Resp;
  if (Scrape.connectTo(FX.Net->scrapePort()) &&
      Scrape.sendRaw("GET /metrics HTTP/1.0\r\n\r\n"))
    Resp = Scrape.readAll(nullptr, 600);
  for (std::thread &T : Clients)
    T.join();
  Stop.store(true);
  Loop.join();

  EXPECT_NE(Resp.find("gold-metrics-v1"), std::string::npos);

  size_t Reconnects = 0;
  for (size_t I = 0; I != K; ++I) {
    const SoakResult &R = Results[I];
    ASSERT_FALSE(R.Failed) << "client " << I + 1 << ": " << R.Why;
    ASSERT_TRUE(R.Compared) << "client " << I + 1;
    // Zero un-counted verdict loss: every surviving client's verdicts match
    // the oracle exactly, chaos or not.
    EXPECT_EQ(R.GotVars, oracleVarStrings(Traces[I])) << "client " << I + 1;
    Reconnects += R.Reconnects;
  }

  NetStats S = FX.Net->stats();
  EXPECT_GT(Reconnects, 0u);
  EXPECT_GT(S.Resumes, 0u); // reconnect-with-resume actually exercised
  EXPECT_EQ(FX.Svc->health().VerdictLossEvents, 0u);
  ASSERT_EQ(FX.Svc->health().ParseErrors, 0u);
}
