//===- tests/SupportTest.cpp - support library unit tests -----------------===//

#include "support/Random.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace gold;

TEST(RandomTest, DeterministicForSeed) {
  Random A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 64; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 4);
}

TEST(RandomTest, NextBelowInRange) {
  Random R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(13), 13u);
}

TEST(RandomTest, NextBelowCoversRange) {
  Random R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 400; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RandomTest, NextInRangeInclusive) {
  Random R(3);
  std::set<int64_t> Seen;
  for (int I = 0; I != 400; ++I) {
    int64_t V = R.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random R(5);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, ReseedRestartsStream) {
  Random R(9);
  uint64_t First = R.next();
  R.next();
  R.reseed(9);
  EXPECT_EQ(R.next(), First);
}

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
  EXPECT_EQ(Table::percent(0.9953), "99.53");
}

TEST(TableTest, PrintsAlignedRows) {
  Table T({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "2"});
  // Smoke test: printing must not crash and rows must round-trip into CSV.
  std::FILE *Null = std::fopen("/dev/null", "w");
  ASSERT_NE(Null, nullptr);
  T.print(Null);
  T.printCsv(Null);
  std::fclose(Null);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer T;
  volatile uint64_t Sink = 0;
  for (int I = 0; I != 100000; ++I)
    Sink = Sink + static_cast<uint64_t>(I);
  EXPECT_GE(T.seconds(), 0.0);
  double S1 = T.seconds();
  EXPECT_GE(T.seconds(), S1);
}
